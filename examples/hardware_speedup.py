"""Hardware evaluation demo: Table 4 unit costs and Table 5 system speedup.

Run with:  python examples/hardware_speedup.py
"""

import example_utils
from repro.experiments import SMOKE_SCALE, run_experiment


def main() -> None:
    print(run_experiment("table4").report())
    print()
    result = run_experiment("table5", scale=SMOKE_SCALE if example_utils.SMOKE else None)
    print(result.report())
    speedups = result.speedups()
    print(
        f"\nNN-LUT end-to-end speedup over I-BERT grows from "
        f"{speedups[16]:.2f}x at sequence length 16 to {speedups[1024]:.2f}x at 1024."
    )


if __name__ == "__main__":
    main()
