"""Shared fixtures: fast-but-real fitted primitives reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import DEFAULT_TRAINING_CONFIG, LutRegistry
from repro.core.training import TrainingConfig


@pytest.fixture(scope="session")
def fast_registry() -> LutRegistry:
    """A shared registry with reduced-cost fits (still 16-entry, still accurate).

    Fitting all four primitives takes a couple of seconds; doing it once per
    session keeps the suite fast while letting integration tests exercise the
    real pipeline end to end.
    """
    config = TrainingConfig(
        hidden_size=15,
        num_samples=12_000,
        batch_size=2048,
        epochs=40,
        learning_rate=1e-3,
        seed=0,
        num_restarts=1,
    )
    return LutRegistry(training_config=config)


@pytest.fixture(scope="session")
def fitted_gelu(fast_registry):
    return fast_registry.get("gelu", num_entries=16)


@pytest.fixture(scope="session")
def fitted_exp(fast_registry):
    return fast_registry.get("exp", num_entries=16)


@pytest.fixture(scope="session")
def fitted_reciprocal(fast_registry):
    return fast_registry.get("reciprocal", num_entries=16)


@pytest.fixture(scope="session")
def fitted_rsqrt(fast_registry):
    return fast_registry.get("rsqrt", num_entries=16)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
