"""Integration tests: the experiment drivers run end to end at smoke scale
and reproduce the qualitative shape of the paper's tables."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentScale,
    run_figure2,
    run_table2a,
    run_table2b,
    run_table3,
    run_table4,
    run_table5,
)

TINY = ExperimentScale(
    num_train=80,
    num_test=64,
    sequence_length=32,
    glue_tasks=("SST-2", "MRPC"),
)


class TestBackendVariantSpecs:
    def test_table2a_grid_labels(self):
        from repro.experiments import backend_variant_specs

        specs = backend_variant_specs(num_entries=8)
        assert list(specs) == [
            "Linear-LUT GELU only", "Linear-LUT Softmax only",
            "Linear-LUT LayerNorm only", "Linear-LUT Altogether",
            "NN-LUT GELU only", "NN-LUT Softmax only",
            "NN-LUT LayerNorm only", "NN-LUT Altogether",
        ]
        assert specs["NN-LUT GELU only"].replaced() == ("gelu",)
        assert specs["NN-LUT Altogether"].gelu.num_entries == 8

    def test_precision_sweep_skips_non_lut_methods(self):
        from repro.experiments import backend_variant_specs

        specs = backend_variant_specs(
            methods=("nn_lut", "ibert"),
            groups=(("", ("softmax",)),),
            precisions=("fp32", "fp16"),
        )
        # One I-BERT row (it has no precision variants), two NN-LUT rows.
        assert list(specs) == ["NN-LUT FP32", "NN-LUT FP16", "I-BERT"]

    def test_exact_method_emits_a_single_baseline_row(self):
        from repro.experiments import backend_variant_specs

        specs = backend_variant_specs(methods=("exact", "nn_lut"))
        baseline_rows = [label for label in specs if label.startswith("Baseline")]
        assert baseline_rows == ["Baseline"]
        assert specs["Baseline"].replaced() == ()


class TestFigure2:
    def test_nn_lut_beats_linear_lut_on_wide_range_ops(self, fast_registry):
        result = run_figure2(registry=fast_registry, num_points=256)
        errors = result.errors
        assert errors["NN-LUT"]["softmax"] < errors["Linear-LUT"]["softmax"]
        assert errors["NN-LUT"]["layernorm"] < errors["Linear-LUT"]["layernorm"]
        # Both methods approximate GELU well (paper's observation).
        assert errors["Linear-LUT"]["gelu"] < 0.02
        assert errors["NN-LUT"]["gelu"] < 0.02
        assert "Figure 2" in result.report()


@pytest.mark.slow
class TestTable2:
    def test_table2a_shape(self, fast_registry):
        result = run_table2a(scale=TINY, registry=fast_registry)
        scores = result.scores
        assert set(scores["Baseline"]) == set(TINY.glue_tasks)
        baseline_avg = np.mean(list(scores["Baseline"].values()))
        nn_avg = np.mean(list(scores["NN-LUT Altogether"].values()))
        linear_ln_avg = np.mean(list(scores["Linear-LUT LayerNorm only"].values()))
        # NN-LUT stays close to the baseline; Linear-LUT's LayerNorm does not.
        assert abs(baseline_avg - nn_avg) < 12.0
        assert baseline_avg - linear_ln_avg > -5.0  # never dramatically better
        assert "Table 2(a)" in result.report()

    def test_table2b_contains_all_rows(self, fast_registry):
        result = run_table2b(scale=TINY, registry=fast_registry)
        expected = {
            "Baseline", "I-BERT", "NN-LUT FP32", "NN-LUT FP32+C",
            "NN-LUT INT32", "NN-LUT INT32+C",
        }
        assert expected == set(result.scores)
        averages = result.averages()
        assert all(np.isfinite(v) for v in averages.values())
        # I-BERT tracks the baseline closely on the INT8 model.
        assert abs(averages["Baseline"] - averages["I-BERT"]) < 10.0
        assert "Averages" in result.report()


@pytest.mark.slow
class TestTable3:
    def test_nn_lut_close_to_baseline(self, fast_registry):
        result = run_table3(scale=TINY, registry=fast_registry)
        baseline = result.results["Baseline"].f1
        nn = result.results["NN-LUT FP32"].f1
        assert baseline > 60.0
        assert abs(baseline - nn) < 15.0
        assert "Table 3" in result.report()


class TestTable4:
    def test_ratios_and_report(self):
        result = run_table4()
        ratios = result.ratios()
        assert ratios["area_ratio"] > 2.0
        assert ratios["power_ratio"] > 20.0
        assert ratios["delay_ratio"] > 3.0
        assert "Table 4" in result.report()


class TestTable5:
    def test_speedups_and_report(self):
        result = run_table5(sequence_lengths=(16, 256, 1024))
        speedups = result.speedups()
        assert speedups[1024] > speedups[16] > 1.0
        assert speedups[1024] == pytest.approx(1.26, abs=0.05)
        assert "Table 5" in result.report()

    def test_run_experiment_honours_the_scale_sweep(self):
        from repro.experiments import run_experiment

        scale = ExperimentScale(table5_sequence_lengths=(32, 512))
        result = run_experiment("table5", scale=scale)
        assert sorted(result.speedups()) == [32, 512]


class TestRunExperimentScaleThreading:
    def test_figure2_honours_num_lut_entries(self, fast_registry):
        from repro.experiments import run_experiment

        scale = ExperimentScale(num_lut_entries=8)
        result = run_experiment("figure2", scale=scale, registry=fast_registry)
        assert result.num_entries == 8

    def test_unknown_experiment_rejected(self):
        from repro.experiments import run_experiment

        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("table9")
