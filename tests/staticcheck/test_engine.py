"""Suppressions, baseline handling, fingerprints, and the CLI."""

import json
import subprocess
from pathlib import Path

from repro.staticcheck import Baseline, analyze
from repro.staticcheck.cli import main as cli_main
from repro.staticcheck.gitdiff import parse_unified_diff

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"


class TestSuppressions:
    def test_ignores_on_same_previous_and_wildcard_lines(self):
        report = analyze([FIXTURES / "suppressed_fixture.py"], root=FIXTURES)
        suppressed = sorted(f.symbol for f in report.suppressed)
        assert suppressed == [
            "annotated:linspace",  # previous-line ignore
            "annotated:ones",  # wildcard ignore
            "annotated:zeros",  # same-line ignore
        ]

    def test_wrong_rule_id_does_not_suppress(self):
        report = analyze([FIXTURES / "suppressed_fixture.py"], root=FIXTURES)
        live = sorted(f.symbol for f in report.findings)
        assert live == ["annotated:empty"]

    def test_one_comment_may_name_several_rules(self, tmp_path):
        target = tmp_path / "multi.py"
        target.write_text(
            "# staticcheck: hot-path -- fixture\n"
            "import numpy as np\n"
            "def f(n):\n"
            "    return np.zeros(n)  "
            "# staticcheck: ignore[resource-leak, dtype-upcast] -- fixture\n"
        )
        report = analyze([target], root=tmp_path)
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["dtype-upcast"]

    def test_ignore_above_decorators_reaches_the_def(self, tmp_path):
        # spec-drift anchors on the ``def to_dict`` line; a comment-only
        # ignore above the decorator stack must travel down to it.
        target = tmp_path / "deco.py"
        target.write_text(
            "from dataclasses import dataclass\n"
            "def deco(f):\n"
            "    return f\n"
            "@dataclass\n"
            "class S:\n"
            "    x: int = 1\n"
            "    hidden: int = 2\n"
            "    # staticcheck: ignore[spec-drift] -- fixture: decorated def\n"
            "    @deco\n"
            "    def to_dict(self):\n"
            '        return {"x": self.x}\n'
            "    @classmethod\n"
            "    def from_dict(cls, payload):\n"
            '        return cls(x=payload.get("x", 1))\n'
        )
        report = analyze([target], root=tmp_path)
        assert report.findings == []
        assert [f.symbol for f in report.suppressed] == ["S.serialize:hidden"]


class TestBaseline:
    def _one_finding(self):
        report = analyze([FIXTURES / "dtypes_fixture.py"], root=FIXTURES)
        assert report.findings
        return report.findings[0]

    def test_fingerprint_is_line_independent(self):
        finding = self._one_finding()
        assert finding.fingerprint == (
            f"{finding.rule}|{finding.path}|{finding.symbol}"
        )
        assert str(finding.line) not in finding.fingerprint.split("|")

    def test_baselined_findings_do_not_fail_the_gate(self):
        finding = self._one_finding()
        baseline = Baseline(entries={finding.fingerprint: "fixture"})
        report = analyze(
            [FIXTURES / "dtypes_fixture.py"], root=FIXTURES, baseline=baseline
        )
        assert finding.fingerprint in {f.fingerprint for f in report.baselined}
        assert finding.fingerprint not in {f.fingerprint for f in report.findings}

    def test_stale_entries_are_reported_for_scanned_files(self):
        stale_fp = "dtype-upcast|dtypes_fixture.py|nowhere:zeros"
        baseline = Baseline(entries={stale_fp: "obsolete"})
        report = analyze(
            [FIXTURES / "dtypes_fixture.py"], root=FIXTURES, baseline=baseline
        )
        assert stale_fp in report.stale_baseline

    def test_partial_scans_do_not_mark_other_files_stale(self):
        other_fp = "dtype-upcast|some/other/file.py|f:zeros"
        baseline = Baseline(entries={other_fp: "not scanned here"})
        report = analyze(
            [FIXTURES / "dtypes_fixture.py"], root=FIXTURES, baseline=baseline
        )
        assert other_fp not in report.stale_baseline

    def test_save_round_trips_reasons(self, tmp_path):
        finding = self._one_finding()
        path = tmp_path / "baseline.json"
        baseline = Baseline(path=path)
        baseline.save([finding], reasons={finding.fingerprint: "because"})
        loaded = Baseline.load(path)
        assert loaded.entries == {finding.fingerprint: "because"}


class TestCli:
    def test_exit_one_on_findings_and_json_output(self, capsys):
        code = cli_main(
            [
                str(FIXTURES / "dtypes_fixture.py"),
                "--root",
                str(FIXTURES),
                "--no-baseline",
                "--format",
                "json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert not payload["ok"]
        assert {f["rule"] for f in payload["findings"]} == {"dtype-upcast"}

    def test_exit_zero_on_clean_input(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert cli_main([str(clean), "--root", str(tmp_path)]) == 0

    def test_rules_filter(self, capsys):
        code = cli_main(
            [
                str(FIXTURES / "dtypes_fixture.py"),
                "--root",
                str(FIXTURES),
                "--no-baseline",
                "--rules",
                "resource-leak",
            ]
        )
        assert code == 0  # dtype findings filtered out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        args = [
            str(FIXTURES / "dtypes_fixture.py"),
            "--root",
            str(FIXTURES),
            "--baseline",
            str(baseline),
        ]
        assert cli_main(args + ["--write-baseline"]) == 0
        assert baseline.is_file()
        entries = json.loads(baseline.read_text())["entries"]
        assert entries and all(e["reason"] for e in entries)
        # With the freshly written baseline the same scan gates clean.
        assert cli_main(args) == 0

    def test_stale_baseline_entry_fails_with_a_named_message(
        self, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        stale_fp = "dtype-upcast|clean.py|gone:zeros"
        baseline.write_text(
            json.dumps(
                {"version": 1, "entries": [{"fingerprint": stale_fp, "reason": "x"}]}
            )
        )
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        code = cli_main(
            [str(clean), "--root", str(tmp_path), "--baseline", str(baseline)]
        )
        assert code == 1  # stale entries fail the gate
        err = capsys.readouterr().err
        assert "stale baseline entry" in err and stale_fp in err

    def test_json_finding_schema_is_stable(self, capsys):
        # Golden key set: external consumers parse this; additions are fine
        # only when deliberate, removals never.
        cli_main(
            [
                str(FIXTURES / "dtypes_fixture.py"),
                "--root",
                str(FIXTURES),
                "--no-baseline",
                "--format",
                "json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "findings",
            "baselined",
            "suppressed",
            "stale_baseline",
            "ok",
        }
        for finding in payload["findings"]:
            assert set(finding) == {
                "rule",
                "path",
                "line",
                "col",
                "message",
                "symbol",
                "severity",
                "fingerprint",
            }

    def test_sarif_output_carries_results_and_suppressions(
        self, tmp_path, capsys
    ):
        report = analyze([FIXTURES / "dtypes_fixture.py"], root=FIXTURES)
        some_fp = report.findings[0].fingerprint
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [{"fingerprint": some_fp, "reason": "known"}],
                }
            )
        )
        code = cli_main(
            [
                str(FIXTURES / "dtypes_fixture.py"),
                "--root",
                str(FIXTURES),
                "--baseline",
                str(baseline),
                "--format",
                "sarif",
            ]
        )
        assert code == 1  # the un-baselined findings still gate
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        (run_obj,) = log["runs"]
        assert run_obj["tool"]["driver"]["name"] == "repro.staticcheck"
        by_fp = {
            r["partialFingerprints"]["repro/v1"]: r for r in run_obj["results"]
        }
        assert by_fp[some_fp]["suppressions"][0]["justification"] == "known"
        live = [r for r in run_obj["results"] if "suppressions" not in r]
        assert live and all(
            r["locations"][0]["physicalLocation"]["region"]["startLine"] >= 1
            for r in live
        )

    def test_text_output_names_rule_and_location(self, capsys):
        code = cli_main(
            [
                str(FIXTURES / "locks_fixture.py"),
                "--root",
                str(FIXTURES),
                "--no-baseline",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "locks_fixture.py:" in out
        assert "[unguarded-attr]" in out


class TestDiffMode:
    @staticmethod
    def _git(repo, *argv):
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", *argv],
            cwd=repo,
            check=True,
            capture_output=True,
        )

    def _seed_repo(self, tmp_path):
        self._git(tmp_path, "init", "-q")
        target = tmp_path / "hot.py"
        target.write_text(
            "# staticcheck: hot-path -- fixture\n"
            "import numpy as np\n"
            "def stale_violation(n):\n"
            "    return np.zeros(n)\n"
            "def edited_later(n):\n"
            "    return n\n"
        )
        self._git(tmp_path, "add", "-A")
        self._git(tmp_path, "commit", "-qm", "seed")
        # Introduce a NEW violation in one function; the old one is
        # untouched and must not be reported in diff mode.
        target.write_text(
            target.read_text().replace(
                "    return n\n", "    return np.ones(n)\n"
            )
        )
        return target

    def test_only_findings_on_changed_lines_survive(self, tmp_path, capsys):
        target = self._seed_repo(tmp_path)
        code = cli_main(
            [str(target), "--root", str(tmp_path), "--diff", "HEAD"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "ones" in out and "zeros" not in out

    def test_without_diff_both_fire(self, tmp_path, capsys):
        target = self._seed_repo(tmp_path)
        code = cli_main([str(target), "--root", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "ones" in out and "zeros" in out

    def test_bad_ref_is_a_usage_error(self, tmp_path, capsys):
        target = self._seed_repo(tmp_path)
        code = cli_main(
            [str(target), "--root", str(tmp_path), "--diff", "nope"]
        )
        assert code == 2
        assert "git diff" in capsys.readouterr().err

    def test_hunk_parser_maps_paths_and_lines(self):
        text = (
            "diff --git a/pkg/mod.py b/pkg/mod.py\n"
            "--- a/pkg/mod.py\n"
            "+++ b/pkg/mod.py\n"
            "@@ -3,0 +4,2 @@ def f():\n"
            "+    x = 1\n"
            "+    y = 2\n"
            "@@ -10,2 +12,0 @@ def g():\n"
            "-    a = 1\n"
            "-    b = 2\n"
            "--- a/gone.py\n"
            "+++ /dev/null\n"
            "@@ -1,3 +0,0 @@\n"
        )
        changed = parse_unified_diff(text)
        assert changed["pkg/mod.py"] == {4, 5, 12}
        assert "gone.py" not in changed and "/dev/null" not in changed


class TestParallelPhase1:
    def test_parallel_and_serial_reports_agree(self):
        serial = analyze([SRC], root=REPO, tests_dir=REPO / "tests", jobs=1)
        parallel = analyze([SRC], root=REPO, tests_dir=REPO / "tests", jobs=2)
        as_set = lambda r: {f.fingerprint for f in r.findings}  # noqa: E731
        assert as_set(serial) == as_set(parallel)
        assert len(serial.findings) == len(parallel.findings)
