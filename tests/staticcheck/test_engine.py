"""Suppressions, baseline handling, fingerprints, and the CLI."""

import json
from pathlib import Path

from repro.staticcheck import Baseline, analyze
from repro.staticcheck.cli import main as cli_main

FIXTURES = Path(__file__).parent / "fixtures"


class TestSuppressions:
    def test_ignores_on_same_previous_and_wildcard_lines(self):
        report = analyze([FIXTURES / "suppressed_fixture.py"], root=FIXTURES)
        suppressed = sorted(f.symbol for f in report.suppressed)
        assert suppressed == [
            "annotated:linspace",  # previous-line ignore
            "annotated:ones",  # wildcard ignore
            "annotated:zeros",  # same-line ignore
        ]

    def test_wrong_rule_id_does_not_suppress(self):
        report = analyze([FIXTURES / "suppressed_fixture.py"], root=FIXTURES)
        live = sorted(f.symbol for f in report.findings)
        assert live == ["annotated:empty"]


class TestBaseline:
    def _one_finding(self):
        report = analyze([FIXTURES / "dtypes_fixture.py"], root=FIXTURES)
        assert report.findings
        return report.findings[0]

    def test_fingerprint_is_line_independent(self):
        finding = self._one_finding()
        assert finding.fingerprint == (
            f"{finding.rule}|{finding.path}|{finding.symbol}"
        )
        assert str(finding.line) not in finding.fingerprint.split("|")

    def test_baselined_findings_do_not_fail_the_gate(self):
        finding = self._one_finding()
        baseline = Baseline(entries={finding.fingerprint: "fixture"})
        report = analyze(
            [FIXTURES / "dtypes_fixture.py"], root=FIXTURES, baseline=baseline
        )
        assert finding.fingerprint in {f.fingerprint for f in report.baselined}
        assert finding.fingerprint not in {f.fingerprint for f in report.findings}

    def test_stale_entries_are_reported_for_scanned_files(self):
        stale_fp = "dtype-upcast|dtypes_fixture.py|nowhere:zeros"
        baseline = Baseline(entries={stale_fp: "obsolete"})
        report = analyze(
            [FIXTURES / "dtypes_fixture.py"], root=FIXTURES, baseline=baseline
        )
        assert stale_fp in report.stale_baseline

    def test_partial_scans_do_not_mark_other_files_stale(self):
        other_fp = "dtype-upcast|some/other/file.py|f:zeros"
        baseline = Baseline(entries={other_fp: "not scanned here"})
        report = analyze(
            [FIXTURES / "dtypes_fixture.py"], root=FIXTURES, baseline=baseline
        )
        assert other_fp not in report.stale_baseline

    def test_save_round_trips_reasons(self, tmp_path):
        finding = self._one_finding()
        path = tmp_path / "baseline.json"
        baseline = Baseline(path=path)
        baseline.save([finding], reasons={finding.fingerprint: "because"})
        loaded = Baseline.load(path)
        assert loaded.entries == {finding.fingerprint: "because"}


class TestCli:
    def test_exit_one_on_findings_and_json_output(self, capsys):
        code = cli_main(
            [
                str(FIXTURES / "dtypes_fixture.py"),
                "--root",
                str(FIXTURES),
                "--no-baseline",
                "--format",
                "json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert not payload["ok"]
        assert {f["rule"] for f in payload["findings"]} == {"dtype-upcast"}

    def test_exit_zero_on_clean_input(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert cli_main([str(clean), "--root", str(tmp_path)]) == 0

    def test_rules_filter(self, capsys):
        code = cli_main(
            [
                str(FIXTURES / "dtypes_fixture.py"),
                "--root",
                str(FIXTURES),
                "--no-baseline",
                "--rules",
                "resource-leak",
            ]
        )
        assert code == 0  # dtype findings filtered out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        args = [
            str(FIXTURES / "dtypes_fixture.py"),
            "--root",
            str(FIXTURES),
            "--baseline",
            str(baseline),
        ]
        assert cli_main(args + ["--write-baseline"]) == 0
        assert baseline.is_file()
        entries = json.loads(baseline.read_text())["entries"]
        assert entries and all(e["reason"] for e in entries)
        # With the freshly written baseline the same scan gates clean.
        assert cli_main(args) == 0

    def test_text_output_names_rule_and_location(self, capsys):
        code = cli_main(
            [
                str(FIXTURES / "locks_fixture.py"),
                "--root",
                str(FIXTURES),
                "--no-baseline",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "locks_fixture.py:" in out
        assert "[unguarded-attr]" in out
