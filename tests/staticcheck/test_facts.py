"""Whole-program facts layer: call resolution, lock tokens, blocking ops.

These pin the engine underneath the interprocedural rules — the parts
whose failure modes are silent (a call that stops resolving makes
``lock-order``/``blocking-under-lock`` quietly blind).
"""

import ast

from repro.staticcheck.facts import (
    FIXPOINT_CAP,
    extract_module_facts,
    link,
    module_name_for,
)


def project(files, tags=()):
    return link(
        extract_module_facts(rel, ast.parse(text), set(tags))
        for rel, text in files.items()
    )


class TestCallResolution:
    def test_self_calls_resolve_through_the_mro(self):
        p = project(
            {
                "a.py": (
                    "class Base:\n"
                    "    def run(self):\n"
                    "        self.hook()\n"
                    "    def hook(self):\n"
                    "        pass\n"
                )
            }
        )
        run = p.functions["a.Base.run"]
        assert p.resolve_call(run, "self.hook") == ("a.Base.hook",)

    def test_self_calls_fan_out_to_subclass_overrides(self):
        # Base.run -> self.hook() may dispatch to any project subclass's
        # override: the engine must see Leaf.hook or miss everything the
        # override acquires/blocks on.
        p = project(
            {
                "a.py": (
                    "class Base:\n"
                    "    def run(self):\n"
                    "        self.hook()\n"
                    "    def hook(self):\n"
                    "        pass\n"
                    "class Leaf(Base):\n"
                    "    def hook(self):\n"
                    "        pass\n"
                )
            }
        )
        run = p.functions["a.Base.run"]
        assert p.resolve_call(run, "self.hook") == ("a.Base.hook", "a.Leaf.hook")

    def test_cross_module_calls_resolve_via_both_import_forms(self):
        p = project(
            {
                "a.py": (
                    "import b\n"
                    "from b import helper\n"
                    "def caller():\n"
                    "    b.func()\n"
                    "    helper()\n"
                ),
                "b.py": "def func():\n    pass\ndef helper():\n    pass\n",
            }
        )
        caller = p.functions["a.caller"]
        assert p.resolve_call(caller, "b.func") == ("b.func",)
        assert p.resolve_call(caller, "helper") == ("b.helper",)

    def test_unknown_names_resolve_to_nothing(self):
        p = project({"a.py": "def caller():\n    mystery()\n"})
        caller = p.functions["a.caller"]
        assert p.resolve_call(caller, "mystery") == ()
        assert p.resolve_call(caller, "np.zeros") == ()


class TestTransitiveSummaries:
    def test_acquires_propagate_through_calls(self):
        p = project(
            {
                "r.py": (
                    "import threading\n"
                    "_m = threading.Lock()\n"
                    "def inner():\n"
                    "    with _m:\n"
                    "        pass\n"
                    "def outer():\n"
                    "    inner()\n"
                )
            }
        )
        trans = p.transitive_acquires()
        assert trans["r.inner"] == frozenset({"r._m"})
        assert trans["r.outer"] == frozenset({"r._m"})

    def test_mutual_recursion_terminates_and_converges(self):
        # f <-> g recurse into each other; the bounded fixpoint must stop
        # and both must still carry the lock token.
        p = project(
            {
                "r.py": (
                    "import threading\n"
                    "_m = threading.Lock()\n"
                    "def f():\n"
                    "    with _m:\n"
                    "        g()\n"
                    "def g():\n"
                    "    f()\n"
                )
            }
        )
        trans = p.transitive_acquires()
        assert trans["r.f"] == frozenset({"r._m"})
        assert trans["r.g"] == frozenset({"r._m"})
        assert FIXPOINT_CAP >= 2  # the bound the loop relies on

    def test_blocking_propagates_with_its_exemption(self):
        p = project(
            {
                "r.py": (
                    "import time\n"
                    "def nap():\n"
                    "    time.sleep(1)\n"
                    "def caller():\n"
                    "    nap()\n"
                )
            }
        )
        trans = p.transitive_blocking()
        assert ("time.sleep", None) in trans["r.caller"]


class TestLockTokens:
    def test_condition_aliases_its_lock(self):
        p = project(
            {
                "r.py": (
                    "import threading\n"
                    "class C:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self._cond = threading.Condition(self._lock)\n"
                )
            }
        )
        assert p.class_guard_token("r.C", "_lock") == p.class_guard_token(
            "r.C", "_cond"
        )

    def test_subclass_uses_converge_on_the_defining_class(self):
        # SessionPool._lock and ShardedPool._lock are the *same* token —
        # the one ReplicaPool defines — or lock-order edges would split.
        p = project(
            {
                "r.py": (
                    "import threading\n"
                    "class Base:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "class Leaf(Base):\n"
                    "    pass\n"
                )
            }
        )
        token = p.class_guard_token("r.Leaf", "_lock")
        assert token == p.class_guard_token("r.Base", "_lock")
        assert token is not None and token.startswith("r.Base.")


class TestBlockingClassification:
    def _ops(self, body):
        mod = extract_module_facts(
            "x.py",
            ast.parse(f"import os, time\ndef ops(conn, q, d, h, items, t):\n{body}"),
            set(),
        )
        return [b.label for b in mod.functions["x.ops"].blocking]

    def test_always_blocking_channel_ops(self):
        assert self._ops("    conn.recv()\n") == ["Connection.recv"]
        assert self._ops("    time.sleep(1)\n") == ["time.sleep"]

    def test_get_distinguishes_queue_from_dict(self):
        assert self._ops("    q.get()\n") == ["queue.get"]
        assert self._ops('    d.get("k")\n') == []
        assert self._ops('    d.get("k", None)\n') == []

    def test_join_excludes_path_and_string_joins(self):
        assert self._ops("    t.join()\n") == ["t.join()"]
        assert self._ops('    os.path.join("a", "b")\n') == []
        assert self._ops('    ", ".join(items)\n') == []

    def test_poll_blocks_only_with_a_real_timeout(self):
        assert self._ops("    h.poll(0)\n") == []
        assert self._ops("    h.poll(t.timeout)\n") == ["Connection.poll"]


class TestModuleNames:
    def test_src_prefix_and_init_are_normalised(self):
        assert module_name_for("src/repro/api/server.py") == "repro.api.server"
        assert module_name_for("src/repro/api/__init__.py") == "repro.api"
        assert module_name_for("a.py") == "a"
