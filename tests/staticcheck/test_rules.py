"""Each rule fires exactly where the fixtures seed a violation — and only there."""

from pathlib import Path

import pytest

from repro.staticcheck import analyze
from repro.staticcheck.rules import (
    BlockingUnderLockRule,
    DtypeDisciplineRule,
    LockDisciplineRule,
    LockOrderRule,
    ParityGateRule,
    PickleBoundaryRule,
    ResourceLifecycleRule,
    SpecDriftRule,
)

FIXTURES = Path(__file__).parent / "fixtures"


def run(name, tests_dir=None):
    return analyze([FIXTURES / name], root=FIXTURES, tests_dir=tests_dir)


def symbols(report, rule):
    return sorted(f.symbol for f in report.findings if f.rule == rule)


class TestLockDiscipline:
    @pytest.fixture(scope="class")
    def report(self):
        return run("locks_fixture.py")

    def test_unguarded_accesses_fire(self, report):
        assert symbols(report, "unguarded-attr") == [
            "Counter.racy_bump:_count",
            "Counter.racy_peek:_count",
        ]

    def test_wait_outside_while_fires(self, report):
        assert symbols(report, "wait-no-loop") == ["Counter.bad_wait:_work.wait"]

    def test_notify_without_lock_fires(self, report):
        assert symbols(report, "notify-no-lock") == [
            "Counter.bad_notify:_work.notify_all"
        ]

    def test_correct_forms_stay_quiet(self, report):
        flagged_methods = {f.symbol.split(":")[0] for f in report.findings}
        # Guarded accesses, the Condition alias, the predicate-looped wait,
        # the locked notify, manual acquire(), and the lockless class.
        for quiet in (
            "Counter.add",
            "Counter.total",
            "Counter.good_wait",
            "Counter.good_notify",
            "Counter.manual",
            "Counter.__init__",
            "Unlocked.bump",
        ):
            assert quiet not in flagged_methods

    def test_locations_point_at_the_offending_lines(self, report):
        lines = {
            f.symbol: f.line for f in report.findings if f.rule == "unguarded-attr"
        }
        text = (FIXTURES / "locks_fixture.py").read_text().splitlines()
        assert "self._count" in text[lines["Counter.racy_peek:_count"] - 1]
        assert "self._count += 1" in text[lines["Counter.racy_bump:_count"] - 1]


class TestResourceLifecycle:
    @pytest.fixture(scope="class")
    def report(self):
        return run("lifecycle_fixture.py")

    def test_leaks_fire(self, report):
        assert symbols(report, "resource-leak") == [
            "LeakyStore.__init__:_block:SharedMemory",
            "leaky_block:block:SharedMemory",
            "leaky_open:handle:open",
            "leaky_tmp:tmp:mkstemp",
        ]

    def test_ownership_proofs_stay_quiet(self, report):
        flagged_scopes = {f.symbol.split(":")[0] for f in report.findings}
        for quiet in (
            "finally_release",
            "handler_release",
            "transfer_by_return",
            "transfer_by_call",
            "with_block",
            "Store.__init__",
        ):
            assert quiet not in flagged_scopes

    def test_immediate_fd_close_is_accepted(self, report):
        # mkstemp returns (fd, path): fd is closed by the very next
        # statement and must not be reported, only the path.
        fd_findings = [f for f in report.findings if ":fd:" in f.symbol]
        assert fd_findings == []


class TestDtypeDiscipline:
    def test_fires_only_in_declared_hot_path_modules(self, tmp_path):
        undeclared = tmp_path / "plain.py"
        undeclared.write_text("import numpy as np\nx = np.zeros(4)\n")
        report = analyze([undeclared], root=tmp_path)
        assert symbols(report, "dtype-upcast") == []

    def test_silent_float64_minting_fires(self):
        report = run("dtypes_fixture.py")
        assert symbols(report, "dtype-upcast") == [
            "bad_alloc:array",
            "bad_alloc:linspace",
            "bad_alloc:zeros",
        ]

    def test_annotated_and_preserving_forms_stay_quiet(self):
        report = run("dtypes_fixture.py")
        assert not any("good_alloc" in f.symbol for f in report.findings)


class TestPickleBoundary:
    @pytest.fixture(scope="class")
    def report(self):
        return run("pickles_fixture.py")

    def test_unpicklable_payloads_fire(self, report):
        assert symbols(report, "pickle-unsafe") == [
            "Shipper.bad_sends:_lock",
            "Shipper.bad_sends:_session",
            "Shipper.bad_sends:genexp",
            "Shipper.bad_sends:lambda",
            "Shipper.bad_spawn:bootstrap",
        ]

    def test_plain_payloads_stay_quiet(self, report):
        flagged = {f.symbol.split(":")[0] for f in report.findings}
        assert "Shipper.good_sends" not in flagged
        assert "Shipper.good_spawn" not in flagged

    def test_requires_module_declaration(self, tmp_path):
        plain = tmp_path / "plain.py"
        plain.write_text("def f(conn):\n    conn.send(lambda: 1)\n")
        report = analyze([plain], root=tmp_path)
        assert symbols(report, "pickle-unsafe") == []


class TestParityGate:
    def test_gap_fires_and_covered_entry_point_passes(self):
        report = analyze(
            [FIXTURES / "parity_src"],
            root=FIXTURES,
            tests_dir=FIXTURES / "parity_tests",
        )
        assert symbols(report, "parity-gap") == [
            "GapPool.classify",
            "LeafPool.pooled",
        ]

    def test_inherited_entry_points_attach_to_the_leaf_class(self):
        # BasePool (the abstract seam) is never audited under its own name;
        # its uncovered pooled() is reported on LeafPool, at the leaf's
        # class definition line.
        report = analyze(
            [FIXTURES / "parity_src"],
            root=FIXTURES,
            tests_dir=FIXTURES / "parity_tests",
        )
        flagged = symbols(report, "parity-gap")
        assert not any(s.startswith("BasePool.") for s in flagged)
        (leaf,) = [f for f in report.findings if f.symbol == "LeafPool.pooled"]
        src = (FIXTURES / "parity_src" / "api" / "serving.py").read_text()
        assert "class LeafPool" in src.splitlines()[leaf.line - 1]

    def test_private_classes_and_helpers_are_not_audited(self):
        report = analyze(
            [FIXTURES / "parity_src"],
            root=FIXTURES,
            tests_dir=FIXTURES / "parity_tests",
        )
        flagged = symbols(report, "parity-gap")
        assert not any("_PrivatePool" in s or "helper" in s for s in flagged)

    def test_skipped_without_a_tests_dir(self):
        report = analyze([FIXTURES / "parity_src"], root=FIXTURES, tests_dir=None)
        assert symbols(report, "parity-gap") == []


class TestLockOrder:
    @pytest.fixture(scope="class")
    def report(self):
        return run("lockorder_fixture.py")

    def test_abba_cycle_fires_through_the_call_graph(self, report):
        # forward_path holds a and acquires b *via a helper call*;
        # reverse_path nests them directly in the opposite order.
        assert symbols(report, "lock-order") == [
            "cycle:lockorder_fixture._lock_a <-> lockorder_fixture._lock_b"
        ]

    def test_consistent_order_and_reacquisition_stay_quiet(self, report):
        flagged = " ".join(symbols(report, "lock-order"))
        assert "_lock_c" not in flagged  # always taken after a, same order
        assert "Reentrant" not in flagged  # self-edge on one token

    def test_message_names_both_locks(self, report):
        (finding,) = [f for f in report.findings if f.rule == "lock-order"]
        assert "_lock_a" in finding.message and "_lock_b" in finding.message


class TestBlockingUnderLock:
    @pytest.fixture(scope="class")
    def report(self):
        return run("blocking_fixture.py")

    def test_direct_and_transitive_blocking_fire(self, report):
        assert symbols(report, "blocking-under-lock") == [
            "Station.bad_recv_via_helper:_pump",
            "Station.bad_sleep:time.sleep",
        ]

    def test_condition_wait_on_its_own_lock_is_exempt(self, report):
        flagged = {f.symbol.split(":")[0] for f in report.findings}
        assert "Station.good_wait" not in flagged

    def test_blocking_with_nothing_held_stays_quiet(self, report):
        flagged = {f.symbol.split(":")[0] for f in report.findings}
        assert "Station.good_sleep_outside" not in flagged
        assert "Station.good_recv_outside" not in flagged
        assert "Station._pump" not in flagged


class TestSpecDrift:
    @pytest.fixture(scope="class")
    def report(self):
        return run("specdrift_fixture.py")

    def test_all_three_drift_shapes_fire(self, report):
        assert symbols(report, "spec-drift") == [
            "DriftSpec.default:dropped",  # fallback 9 vs dataclass default 2
            "DriftSpec.from_dict:dropped",  # expected key never written
            "DriftSpec.serialize:dropped",  # field never reaches the payload
            "DriftSpec.to_dict:extra",  # written key never read back
        ]

    def test_symmetric_pair_stays_quiet(self, report):
        assert not any("GoodSpec" in s for s in symbols(report, "spec-drift"))

    def test_write_closure_credits_helper_methods(self, report):
        # ClosureSpec.to_dict reads its field through self._body().
        assert not any("ClosureSpec" in s for s in symbols(report, "spec-drift"))


class TestOpcodeAudit:
    @pytest.fixture(scope="class")
    def report(self):
        return run("opcodes_fixture.py")

    def test_unanswered_opcode_fires(self, report):
        assert symbols(report, "opcode-unhandled") == ["op:halt"]

    def test_handled_opcodes_stay_quiet(self, report):
        flagged = symbols(report, "opcode-unhandled")
        assert "op:ping" not in flagged and "op:ok" not in flagged

    def test_requires_boundary_declaration(self, tmp_path):
        plain = tmp_path / "plain.py"
        plain.write_text('def f(conn):\n    conn.send("halt", None)\n')
        report = analyze([plain], root=tmp_path)
        assert symbols(report, "opcode-unhandled") == []


class TestRuleRegistry:
    def test_every_rule_declares_its_ids(self):
        for rule_cls in (
            LockDisciplineRule,
            ResourceLifecycleRule,
            DtypeDisciplineRule,
            PickleBoundaryRule,
            ParityGateRule,
            LockOrderRule,
            BlockingUnderLockRule,
            SpecDriftRule,
        ):
            assert rule_cls.rule_ids, rule_cls
