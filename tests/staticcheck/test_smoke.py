"""Tier-1 gate: zero non-baseline staticcheck findings over src/.

This is the enforcement point the whole subsystem exists for: every rule
runs over the real codebase on every test run, so a new unguarded access,
leaked handle, silent float64 mint, unpicklable payload, or untested serving
entry point fails CI the moment it lands — it either gets fixed or gets an
explicit baseline entry with a reason.

The per-file classes double as regression tests for the defects the pass
found and fixed in this PR: if the fix regresses, the checker fires again.
"""

from pathlib import Path

from repro.staticcheck import Baseline, analyze
from repro.staticcheck.cli import DEFAULT_BASELINE_NAME

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"
TESTS = REPO / "tests"
BASELINE = REPO / DEFAULT_BASELINE_NAME


def _fmt(findings):
    return "\n".join(f"{f.location()}: [{f.rule}] {f.message}" for f in findings)


class TestRepoGate:
    def test_src_has_zero_non_baseline_findings(self):
        baseline = Baseline.load(BASELINE)
        report = analyze(
            [SRC], root=REPO, tests_dir=TESTS, baseline=baseline
        )
        assert report.ok, (
            "staticcheck found new violations (fix them or baseline with a "
            "reason):\n" + _fmt(report.findings)
        )

    def test_baseline_has_no_stale_entries(self):
        baseline = Baseline.load(BASELINE)
        report = analyze([SRC], root=REPO, tests_dir=TESTS, baseline=baseline)
        assert report.stale_baseline == [], (
            "baseline entries no longer fire — delete them: "
            f"{report.stale_baseline}"
        )

    def test_every_baseline_entry_has_a_reason(self):
        baseline = Baseline.load(BASELINE)
        assert baseline.entries
        for fingerprint, reason in baseline.entries.items():
            assert reason and "TODO" not in reason, fingerprint


class TestFixedDefectsStayFixed:
    """Checker-level regression pins for the defects fixed in this PR."""

    def test_serving_queue_lock_discipline_is_clean(self):
        # ServingQueue.start() used to publish _live_workers outside the
        # lock that _worker_loop decrements it under.  Also pins the
        # condition-wait exemption: _scheduler_loop waits on its own
        # Condition under the aliased lock — the canonical idiom, which
        # blocking-under-lock must never flag.
        report = analyze([SRC / "repro" / "api" / "server.py"], root=REPO)
        assert report.findings == [], _fmt(report.findings)

    def test_kernel_build_and_pool_have_only_the_baselined_compile_wait(self):
        # _compile_library used to leak its temp .so when subprocess.run
        # raised, and _run_rows read self._pool outside _pool_lock
        # (double-checked locking).  The one-time compile under
        # _native_lock is deliberate (build-once) and stays baselined.
        report = analyze([SRC / "repro" / "core" / "kernels.py"], root=REPO)
        assert [f.fingerprint for f in report.findings] == [
            "blocking-under-lock|src/repro/core/kernels.py"
            "|_load_native_lib:_compile_library"
        ], _fmt(report.findings)

    def test_sharding_has_exactly_the_baselined_findings(self):
        # _ShardClient's benign-racy _broken read and its deliberate
        # recv-under-lock (one request in flight per worker) are documented
        # exceptions — and must stay the only findings there.  The opcode
        # audit is clean: every status/op sent across the worker boundary
        # has a handler.
        report = analyze([SRC / "repro" / "api" / "sharding.py"], root=REPO)
        assert sorted(f.fingerprint for f in report.findings) == [
            "blocking-under-lock|src/repro/api/sharding.py|_ShardClient._call:_recv",
            "blocking-under-lock|src/repro/api/sharding.py"
            "|_ShardClient.wait_ready:_recv",
            "unguarded-attr|src/repro/api/sharding.py|_ShardClient.defunct:_broken",
        ], _fmt(report.findings)

    def test_deleting_a_serialized_config_field_fails_the_gate(self, tmp_path):
        # The acceptance mutation: drop one field write from
        # SessionConfig.to_dict() and spec-drift must fire.
        mutated = tmp_path / "session.py"
        text = (SRC / "repro" / "api" / "session.py").read_text()
        assert '"seed": self.seed,' in text
        mutated.write_text(text.replace('"seed": self.seed,', ""))
        report = analyze([mutated], root=tmp_path)
        rules = {f.rule for f in report.findings}
        assert "spec-drift" in rules, _fmt(report.findings)
        symbols = {f.symbol for f in report.findings if f.rule == "spec-drift"}
        assert "SessionConfig.serialize:seed" in symbols
        assert "SessionConfig.from_dict:seed" in symbols

    def test_deleting_an_opcode_handler_fails_the_gate(self, tmp_path):
        # Second acceptance mutation: rename one worker-side dispatch arm
        # and the control-message audit must flag the now-unhandled opcode.
        mutated = tmp_path / "sharding.py"
        text = (SRC / "repro" / "api" / "sharding.py").read_text()
        assert 'elif op == "pooled":' in text
        mutated.write_text(text.replace('elif op == "pooled":', 'elif op == "pool3d":'))
        report = analyze([mutated], root=tmp_path)
        unhandled = [f for f in report.findings if f.rule == "opcode-unhandled"]
        assert [f.symbol for f in unhandled] == ["op:pooled"], _fmt(report.findings)

    def test_hot_path_modules_mint_no_silent_float64(self):
        targets = [
            SRC / "repro" / "core" / "lut.py",
            SRC / "repro" / "core" / "approximators.py",
            SRC / "repro" / "transformer",
        ]
        report = analyze(targets, root=REPO)
        dtype = [f for f in report.findings if f.rule == "dtype-upcast"]
        assert dtype == [], _fmt(dtype)
