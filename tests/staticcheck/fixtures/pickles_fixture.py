"""Seeded pickle-boundary violations in a declared boundary module."""

# staticcheck: pickle-boundary -- fixture module for the pickle rule

import multiprocessing
import threading


def _worker_main(endpoint):
    return endpoint


class Shipper:
    def __init__(self, conn):
        self._conn = conn
        self._lock = threading.Lock()
        self._session = object()

    def bad_sends(self, payload):
        self._conn.send(lambda x: x)  # BAD: lambda
        self._conn.send((i for i in payload))  # BAD: generator expression
        self._conn.send(self._lock)  # BAD: lock attribute by name
        self._conn.send(("state", self._session))  # BAD: session attribute

    def bad_spawn(self, context):
        def bootstrap(endpoint):
            return endpoint

        # BAD: nested function cannot be pickled by qualified name
        return context.Process(target=bootstrap, args=(self._conn,))

    def good_sends(self, spec_payload, tables):
        self._conn.send(("init", spec_payload, tables))  # quiet: plain data

    def good_spawn(self, context, endpoint):
        # quiet: module-level target, picklable args
        return multiprocessing.get_context("spawn").Process(
            target=_worker_main, args=(endpoint,)
        )
