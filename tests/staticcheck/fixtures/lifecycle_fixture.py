"""Seeded resource-lifecycle violations and every accepted ownership proof."""

import os
import tempfile
from multiprocessing.shared_memory import SharedMemory


def leaky_block(size):
    block = SharedMemory(create=True, size=size)  # BAD: resource-leak
    header = bytes(block.buf[:8])
    return header  # the handle itself never escapes, never closes


def leaky_tmp():
    fd, tmp = tempfile.mkstemp()  # BAD for 'tmp' (fd released next stmt)
    os.close(fd)
    payload = tmp.encode()
    return payload


def leaky_open(path):
    handle = open(path)  # BAD: never closed
    data = handle.read()
    return data


def finally_release(size):
    block = SharedMemory(create=True, size=size)  # quiet: finally
    try:
        return bytes(block.buf[:8])
    finally:
        block.close()
        block.unlink()


def handler_release(path):
    fd, tmp = tempfile.mkstemp()  # quiet: immediate close + handler unlink
    os.close(fd)
    try:
        os.replace(tmp, path)
    except BaseException:
        os.unlink(tmp)
        raise


def transfer_by_return(size):
    block = SharedMemory(create=True, size=size)  # quiet: returned
    return block


def transfer_by_call(registry, size):
    block = SharedMemory(create=True, size=size)  # quiet: handed off
    registry.append(block)


def with_block(path):
    with open(path) as handle:  # quiet: context manager
        return handle.read()


class Store:
    """Attribute storage is fine when the class has a teardown method."""

    def __init__(self, size):
        self._block = SharedMemory(create=True, size=size)  # quiet

    def close(self):
        self._block.close()
        self._block.unlink()


class LeakyStore:
    """Attribute storage on a class with no teardown is still a leak."""

    def __init__(self, size):
        self._block = SharedMemory(create=True, size=size)  # BAD
