"""Seeded control-message drift across a declared pickle boundary.

tests/staticcheck/test_rules.py asserts findings by symbol against these
exact constructs.
"""
# staticcheck: pickle-boundary -- fixture worker transport


def parent_send(conn):
    conn.send("ping", None)
    conn.send("halt", None)  # BAD: no handler in the boundary group


def worker_loop(conn):
    op, _payload = conn.recv()
    if op == "ping":
        conn.send("ok", "pong")


def parent_recv(conn):
    status, value = conn.recv()
    if status == "ok":
        return value
    raise RuntimeError(status)
