"""Seeded to_dict/from_dict drift (and symmetric pairs that stay quiet).

tests/staticcheck/test_rules.py asserts findings by symbol against these
exact constructs.
"""

from dataclasses import dataclass, field


@dataclass
class GoodSpec:
    """Fully symmetric: every check stays quiet."""

    alpha: int = 1
    beta: str = "x"
    tags: dict = field(default_factory=dict)

    def to_dict(self):
        return {"alpha": self.alpha, "beta": self.beta, "tags": dict(self.tags)}

    @classmethod
    def from_dict(cls, payload):
        known = {"alpha", "beta", "tags"}
        values = {key: payload[key] for key in known if key in payload}
        return cls(**values)


@dataclass
class ClosureSpec:
    """Field read through a same-class helper: the write closure credits it."""

    inner: int = 0

    def _body(self):
        return {"inner": self.inner}

    def to_dict(self):
        return self._body()

    @classmethod
    def from_dict(cls, payload):
        return cls(inner=payload.get("inner", 0))


@dataclass
class DriftSpec:
    kept: int = 1
    dropped: int = 2
    slack: float = 0.5

    def to_dict(self):
        return {
            "kept": self.kept,
            "slack": self.slack,
            "extra": 42,  # BAD: from_dict neither reads nor admits it
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(
            kept=payload.get("kept", 1),
            # BAD twice: 'dropped' is never written by to_dict, and the
            # fallback (9) disagrees with the dataclass default (2).
            dropped=payload.get("dropped", 9),
            slack=payload.get("slack", 0.5),
        )
