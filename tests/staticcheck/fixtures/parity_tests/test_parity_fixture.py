"""Fake parity test corpus for the parity-audit fixture (never collected:
the rule only reads this file as text).

CoveredPool.forward is bitwise-gated under float64 here; GapPool is not.
"""


def check_covered_pool_forward_float64():
    # mentions: CoveredPool, forward, float64 -> satisfies the audit
    pass


def check_leaf_pool_forward_float64():
    # mentions: LeafPool, forward, float64 -> covers the defined method,
    # but nothing covers the method LeafPool inherits from its base.
    pass
