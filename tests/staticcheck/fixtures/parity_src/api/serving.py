"""Parity-audit fixture: one covered entry point, one gap, one private class."""


class CoveredPool:
    def forward(self, requests):
        return requests

    def helper(self):  # not a hot entry point: never audited
        return None


class GapPool:
    def classify(self, requests):  # BAD: no float64 test names this
        return requests


class _PrivatePool:
    def forward(self, requests):  # private class: never audited
        return requests


class BasePool:
    """Abstract seam: has a project subclass, so it is never audited itself."""

    def pooled(self, requests):
        return requests


class LeafPool(BasePool):
    """Concrete leaf: audited for what it defines AND what it inherits."""

    def forward(self, requests):
        return requests
