"""Parity-audit fixture: one covered entry point, one gap, one private class."""


class CoveredPool:
    def forward(self, requests):
        return requests

    def helper(self):  # not a hot entry point: never audited
        return None


class GapPool:
    def classify(self, requests):  # BAD: no float64 test names this
        return requests


class _PrivatePool:
    def forward(self, requests):  # private class: never audited
        return requests
