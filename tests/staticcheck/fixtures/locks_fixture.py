"""Seeded lock-discipline violations (and correct forms that must stay quiet).

Line numbers matter: tests/staticcheck/test_rules.py asserts findings by
symbol, rule, and these exact constructs.
"""

import threading


class Counter:
    """One seeded violation per lock rule, plus guarded accesses."""

    def __init__(self):
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._count = 0  # construction: never flagged
        self._items = []

    def add(self, n):
        with self._lock:
            self._count += n  # guarded write: establishes ownership
            self._items.append(n)

    def total(self):
        with self._work:  # Condition aliases the lock: holding it counts
            return self._count

    def racy_peek(self):
        return self._count  # BAD: unguarded-attr read

    def racy_bump(self):
        self._count += 1  # BAD: unguarded-attr write

    def bad_wait(self):
        with self._work:
            self._work.wait(0.1)  # BAD: wait-no-loop (no while predicate)

    def good_wait(self):
        with self._work:
            while not self._items:
                self._work.wait(0.1)  # quiet: proper predicate loop

    def bad_notify(self):
        self._work.notify_all()  # BAD: notify-no-lock

    def good_notify(self):
        with self._lock:
            self._work.notify_all()  # quiet: alias group held

    def manual(self):
        # Quiet: manual acquire() — static with-analysis cannot follow it,
        # the whole method is exempt.
        if self._lock.acquire(timeout=1.0):
            try:
                return self._count
            finally:
                self._lock.release()
        return None


class Unlocked:
    """No guards at all: nothing here may ever be flagged."""

    def __init__(self):
        self.value = 0

    def bump(self):
        self.value += 1
