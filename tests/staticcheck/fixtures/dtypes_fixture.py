"""Seeded dtype-discipline violations in a declared hot-path module."""

# staticcheck: hot-path -- fixture module for the dtype rule

import numpy as np


def bad_alloc(n):
    buffer = np.zeros(n)  # BAD: dtype-upcast (silent float64)
    grid = np.linspace(0.0, 1.0, n)  # BAD: dtype-upcast
    table = np.array([1.0, 2.0])  # BAD: literal without dtype
    return buffer, grid, table


def good_alloc(n, x):
    buffer = np.zeros(n, dtype=np.float32)  # quiet: explicit
    grid = np.linspace(0.0, 1.0, n, dtype=np.float64)  # quiet: deliberate
    passthrough = np.asarray(x)  # quiet: dtype-preserving on an array
    indices = np.arange(n)  # quiet: integer contract, excluded
    return buffer, grid, passthrough, indices
