"""Seeded ABBA lock-order inversion (and consistent orders that stay quiet).

tests/staticcheck/test_rules.py asserts findings by symbol against these
exact constructs.
"""

import threading

_lock_a = threading.Lock()
_lock_b = threading.Lock()
_lock_c = threading.Lock()


def _grab_b():
    with _lock_b:
        pass


def forward_path():
    with _lock_a:
        _grab_b()  # acquires b while holding a — through the call graph


def reverse_path():
    with _lock_b:
        with _lock_a:  # BAD: b -> a closes the cycle with forward_path
            pass


def consistent_one():
    with _lock_a:
        with _lock_c:
            pass


def consistent_two():
    with _lock_a:
        with _lock_c:  # quiet: same order everywhere — no inversion
            pass


class Reentrant:
    """Re-acquisition of one token is out of scope (never reported)."""

    def __init__(self):
        self._lock = threading.RLock()

    def outer(self):
        with self._lock:
            self.inner()  # quiet: self-edge on the same token

    def inner(self):
        with self._lock:
            pass
