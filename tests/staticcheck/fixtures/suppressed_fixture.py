"""Suppression-handling fixture: every seeded violation carries an ignore."""

# staticcheck: hot-path -- fixture module for suppression handling

import numpy as np


def annotated(n):
    buffer = np.zeros(n)  # staticcheck: ignore[dtype-upcast] -- fixture: same-line suppression
    # staticcheck: ignore[dtype-upcast] -- fixture: previous-line suppression
    grid = np.linspace(0.0, 1.0, n)
    table = np.ones(n)  # staticcheck: ignore[*] -- fixture: wildcard suppression
    unrelated = np.empty(n)  # staticcheck: ignore[resource-leak] -- wrong rule: must NOT suppress
    return buffer, grid, table, unrelated
