"""Seeded blocking-while-locked operations (and the sanctioned idioms).

tests/staticcheck/test_rules.py asserts findings by symbol against these
exact constructs.
"""

import threading
import time


class Station:
    def __init__(self, conn):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._conn = conn
        self._ready = False

    def bad_sleep(self):
        with self._lock:
            time.sleep(0.5)  # BAD: every contending thread stalls

    def bad_recv_via_helper(self):
        with self._lock:
            return self._pump()  # BAD: transitively blocks on recv()

    def _pump(self):
        return self._conn.recv()  # quiet here: nothing held locally

    def good_wait(self):
        with self._cond:
            while not self._ready:
                self._cond.wait(0.1)  # quiet: wait releases its own lock

    def good_sleep_outside(self):
        time.sleep(0.01)  # quiet: nothing held

    def good_recv_outside(self):
        payload = self._pump()  # quiet: call made with nothing held
        with self._lock:
            self._ready = True
        return payload
