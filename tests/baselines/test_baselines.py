"""Tests for the Linear-LUT / Exponential-LUT baselines and the I-BERT kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    build_lut_from_breakpoints,
    exponential_breakpoints,
    exponential_lut_for,
    fit_linear_lut,
    i_exp,
    i_gelu,
    i_layernorm,
    i_softmax,
    i_sqrt,
    int_exp,
    integer_sqrt,
    linear_breakpoints,
    linear_lut_for,
)
from repro.core import functions


class TestBreakpointGrids:
    def test_linear_breakpoints_equally_spaced(self):
        bps = linear_breakpoints((-5, 5), 16)
        assert bps.size == 15
        np.testing.assert_allclose(np.diff(bps), np.diff(bps)[0])

    def test_exponential_breakpoints_grow(self):
        bps = exponential_breakpoints((0, 1024), 16)
        widths = np.diff(np.concatenate(([0.0], bps, [1024.0])))
        assert np.all(np.diff(widths) > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_breakpoints((5, -5), 16)
        with pytest.raises(ValueError):
            exponential_breakpoints((0, 1), 1)


class TestLinearLut:
    def test_gelu_is_well_approximated(self):
        lut = linear_lut_for("gelu", num_entries=16)
        x = np.linspace(-5, 5, 500)
        assert np.mean(np.abs(lut(x) - functions.gelu(x))) < 0.01

    def test_rsqrt_is_poorly_approximated(self, fitted_rsqrt):
        # The paper's key observation: fixed equally-spaced breakpoints cannot
        # track 1/sqrt over three decades, while NN-LUT's learned ones can.
        # Relative error is the operative quantity (the rsqrt output scales a
        # whole LayerNorm row).
        linear = linear_lut_for("rsqrt", num_entries=16)
        grid = np.exp(np.linspace(np.log(0.1), np.log(1024), 500))
        reference = functions.rsqrt(grid)
        linear_error = np.mean(np.abs(linear(grid) - reference) / reference)
        nn_error = np.mean(np.abs(fitted_rsqrt.lut(grid) - reference) / reference)
        assert linear_error > 1.5 * nn_error

    def test_entry_count_and_metadata(self):
        lut = linear_lut_for("exp", num_entries=8)
        assert lut.num_entries == 8
        assert lut.metadata["mode"] == "linear"

    def test_interpolation_method_is_continuous(self):
        lut = fit_linear_lut(functions.gelu, (-5, 5), num_entries=16, method="interpolation")
        bps = lut.breakpoints
        left = lut(bps - 1e-9)
        right = lut(bps + 1e-9)
        np.testing.assert_allclose(left, right, atol=1e-6)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            build_lut_from_breakpoints(functions.gelu, np.array([0.0]), (-1, 1), method="spline")


class TestExponentialLut:
    def test_better_than_linear_on_rsqrt(self):
        linear = linear_lut_for("rsqrt", num_entries=16)
        exponential = exponential_lut_for("rsqrt", num_entries=16)
        grid = np.exp(np.linspace(np.log(0.1), np.log(1024), 500))
        lin_err = np.mean(np.abs(linear(grid) - functions.rsqrt(grid)))
        exp_err = np.mean(np.abs(exponential(grid) - functions.rsqrt(grid)))
        assert exp_err < lin_err

    def test_metadata(self):
        lut = exponential_lut_for("reciprocal", num_entries=16)
        assert lut.metadata["mode"] == "exponential"


class TestIBertKernels:
    def test_i_gelu_close_to_gelu(self):
        x = np.linspace(-5, 5, 500)
        assert np.max(np.abs(i_gelu(x) - functions.gelu(x))) < 0.03

    def test_i_exp_close_to_exp(self):
        x = np.linspace(-20, 0, 500)
        assert np.max(np.abs(i_exp(x) - np.exp(x))) < 0.01

    def test_i_softmax_normalised(self, rng):
        x = rng.normal(0, 3, size=(6, 40))
        out = i_softmax(x)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-6)
        assert np.mean(np.abs(out - functions.softmax(x))) < 5e-3

    def test_i_sqrt_accuracy(self):
        x = np.array([1e-2, 0.5, 2.0, 100.0, 5e4])
        np.testing.assert_allclose(i_sqrt(x, iterations=8), np.sqrt(x), rtol=1e-3)

    def test_i_layernorm_close_to_exact(self, rng):
        x = rng.normal(0.5, 2.0, size=(8, 64))
        assert np.mean(np.abs(i_layernorm(x) - functions.layer_norm(x))) < 5e-3

    def test_integer_sqrt_exact_floor(self):
        values = np.array([0, 1, 2, 3, 4, 15, 16, 17, 1_000_000, 999_999])
        np.testing.assert_array_equal(integer_sqrt(values), np.floor(np.sqrt(values)).astype(int))

    def test_integer_sqrt_rejects_negative(self):
        with pytest.raises(ValueError):
            integer_sqrt(np.array([-1]))

    def test_int_exp_matches_float_simulation(self):
        scale = 0.01
        x = np.linspace(-15, 0, 200)
        q = np.round(x / scale).astype(np.int64)
        q_out, out_scale = int_exp(q, scale)
        approx = q_out.astype(float) * out_scale
        assert np.max(np.abs(approx - np.exp(x))) < 0.02

    @given(st.integers(min_value=0, max_value=10**12))
    @settings(max_examples=60, deadline=None)
    def test_integer_sqrt_property(self, n):
        root = int(integer_sqrt(np.array([n]))[0])
        assert root * root <= n < (root + 1) * (root + 1)
