"""Tests for the synthetic task generators, metrics and evaluation loops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tasks import (
    GLUE_TASKS,
    GlueBenchmark,
    accuracy,
    compute_metric,
    evaluate_squad,
    f1_binary,
    generate_squad_task,
    generate_task,
    list_glue_tasks,
    matthews_correlation,
    pearson_correlation,
    span_exact_match,
    span_f1,
    spearman_correlation,
)
from repro.tasks.squad import SquadTaskSpec
from repro.transformer import RobertaLikeModel, exact_backend, nn_lut_backend

SMALL_OVERRIDES = {"num_train": 48, "num_test": 32, "sequence_length": 24}


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(200 / 3)

    def test_accuracy_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_f1_perfect_and_zero(self):
        assert f1_binary(np.array([1, 1, 0]), np.array([1, 1, 0])) == 100.0
        assert f1_binary(np.zeros(4, int), np.ones(4, int)) == 0.0

    def test_matthews_perfect(self):
        labels = np.array([0, 1, 0, 1, 1])
        assert matthews_correlation(labels, labels) == pytest.approx(100.0)
        assert matthews_correlation(1 - labels, labels) == pytest.approx(-100.0)

    def test_pearson_and_spearman(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(100.0)
        assert spearman_correlation(x, x**3) == pytest.approx(100.0)
        assert pearson_correlation(x, np.zeros(4)) == 0.0

    def test_span_metrics(self):
        prediction = (np.array([2, 5]), np.array([4, 6]))
        reference = (np.array([2, 0]), np.array([4, 1]))
        assert span_exact_match(prediction, reference) == 50.0
        assert span_f1(prediction, reference) == pytest.approx(50.0)

    def test_metric_dispatch(self):
        assert compute_metric("accuracy", np.array([1]), np.array([1])) == 100.0
        with pytest.raises(KeyError):
            compute_metric("bleu", np.array([1]), np.array([1]))

    @given(st.integers(2, 6), st.integers(10, 40))
    @settings(max_examples=20, deadline=None)
    def test_accuracy_bounds_property(self, num_classes, n):
        rng = np.random.default_rng(n)
        predictions = rng.integers(0, num_classes, size=n)
        labels = rng.integers(0, num_classes, size=n)
        assert 0.0 <= accuracy(predictions, labels) <= 100.0


class TestGlueGeneration:
    def test_all_eight_tasks_defined(self):
        assert set(list_glue_tasks()) == {
            "MRPC", "RTE", "CoLA", "SST-2", "STS-B", "QQP", "MNLI", "QNLI",
        }

    def test_split_sizes_and_vocab(self):
        task = generate_task("SST-2", vocab_size=500, seed=0, spec_overrides=SMALL_OVERRIDES)
        assert task.train_tokens.shape == (48, 24)
        assert task.test_tokens.shape == (32, 24)
        assert task.train_tokens.max() < 500
        assert task.train_tokens.min() >= 0

    def test_classification_labels_in_range(self):
        task = generate_task("MNLI", seed=1, spec_overrides=SMALL_OVERRIDES)
        assert set(np.unique(task.train_labels)) <= {0, 1, 2}

    def test_regression_targets_in_range(self):
        task = generate_task("STS-B", seed=2, spec_overrides=SMALL_OVERRIDES)
        assert task.train_labels.min() >= 0.0 and task.train_labels.max() <= 5.0

    def test_deterministic_given_seed(self):
        a = generate_task("QNLI", seed=5, spec_overrides=SMALL_OVERRIDES)
        b = generate_task("QNLI", seed=5, spec_overrides=SMALL_OVERRIDES)
        np.testing.assert_array_equal(a.train_tokens, b.train_tokens)
        np.testing.assert_array_equal(a.test_labels, b.test_labels)

    def test_different_seeds_differ(self):
        a = generate_task("QNLI", seed=5, spec_overrides=SMALL_OVERRIDES)
        b = generate_task("QNLI", seed=6, spec_overrides=SMALL_OVERRIDES)
        assert not np.array_equal(a.train_tokens, b.train_tokens)

    def test_unknown_task_rejected(self):
        with pytest.raises(KeyError, match="Unknown GLUE task"):
            generate_task("WNLI")

    def test_spec_validation(self):
        spec = GLUE_TASKS["SST-2"]
        with pytest.raises(ValueError):
            type(spec)(**{**spec.__dict__, "topic_strength": 0.0})
        with pytest.raises(ValueError):
            type(spec)(**{**spec.__dict__, "label_noise": 0.7})


class TestSquadGeneration:
    def test_spans_inside_context(self):
        spec = SquadTaskSpec(sequence_length=32, num_train=20, num_test=10)
        data = generate_squad_task(vocab_size=500, seed=0, spec=spec)
        starts, ends = data.train_spans
        assert np.all(starts >= spec.question_length)
        assert np.all(ends < spec.sequence_length)
        assert np.all(ends >= starts)
        assert np.all(ends - starts + 1 <= spec.max_span_length)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SquadTaskSpec(sequence_length=10, question_length=8, max_span_length=8)


@pytest.fixture(scope="module")
def tiny_model():
    return RobertaLikeModel.build(
        seed=1, num_layers=2, hidden_size=32, num_heads=2, intermediate_size=64,
        vocab_size=500, max_sequence_length=64,
    )


class TestEvaluationLoop:
    def test_benchmark_baseline_beats_chance(self, tiny_model):
        benchmark = GlueBenchmark.build(
            tiny_model, task_names=["SST-2"], seed=0, spec_overrides=SMALL_OVERRIDES
        )
        score = benchmark.score("SST-2", exact_backend())
        assert score > 70.0

    def test_nn_lut_backend_close_to_baseline(self, tiny_model, fast_registry):
        benchmark = GlueBenchmark.build(
            tiny_model, task_names=["SST-2"], seed=0, spec_overrides=SMALL_OVERRIDES
        )
        baseline = benchmark.score("SST-2", exact_backend())
        approx = benchmark.score("SST-2", nn_lut_backend(registry=fast_registry))
        assert abs(baseline - approx) < 15.0

    def test_score_unknown_task_raises(self, tiny_model):
        benchmark = GlueBenchmark.build(
            tiny_model, task_names=["SST-2"], seed=0, spec_overrides=SMALL_OVERRIDES
        )
        with pytest.raises(KeyError):
            benchmark.score("MNLI")

    def test_evaluate_squad_returns_baseline_and_backends(self, tiny_model, fast_registry):
        spec = SquadTaskSpec(sequence_length=24, num_train=32, num_test=16)
        data = generate_squad_task(vocab_size=tiny_model.config.vocab_size, seed=0, spec=spec)
        results = evaluate_squad(
            tiny_model,
            {"NN-LUT": nn_lut_backend(registry=fast_registry, replace=["softmax"])},
            data=data,
        )
        assert set(results) == {"Baseline", "NN-LUT"}
        for result in results.values():
            assert 0.0 <= result.f1 <= 100.0
            assert 0.0 <= result.exact_match <= 100.0
