"""Multi-process sharded serving: parity, failure modes, shared-memory hygiene.

The tier-1 gate mirrors tests/api/test_server.py: a tiny float64 model, two
worker *processes*, mixed-length traffic, bitwise parity against
single-session serving.  The failure-mode tests cover the ISSUE's checklist:
a worker dying mid-service surfaces as a descriptive error (and the pool
still closes cleanly), and the shared-memory blocks are unlinked on
``close()`` even when construction itself fails halfway.
"""

import gc
import threading
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.api import (
    BackendSpec,
    InferenceSession,
    ServerClosedError,
    ServingQueue,
    SessionConfig,
    ShardedPool,
    SharedWeightStore,
    WorkerDiedError,
    attach_weight_state,
    export_weight_state,
)
from repro.api import sharding
from repro.core.kernels import native_available
from repro.transformer.config import tiny_test_config
from repro.transformer.heads import ClassificationHead
from repro.transformer.models import EncoderModel


@pytest.fixture(scope="module", params=["pipe", "shm_ring"])
def sharded64(request, fast_registry):
    """Two worker processes, parametrised over both worker transports.

    Every parity/dispatch/queue test in this module therefore gates the
    shared-memory ring transport bitwise against single-session serving,
    exactly like the pickle pipe.
    """
    config = SessionConfig(
        model_family="tiny", compute_dtype="float64", max_batch_size=3
    )
    pool = ShardedPool(
        config, spec=BackendSpec.nn_lut(), registry=fast_registry,
        num_replicas=2, transport=request.param,
    )
    yield pool
    pool.close()


@pytest.fixture(scope="module")
def single64(sharded64, fast_registry):
    """Single-session serving over the same frozen model (the parity oracle)."""
    return InferenceSession.from_model(
        sharded64.model, spec=sharded64.spec, registry=fast_registry,
        max_batch_size=3,
    )


@pytest.fixture(scope="module")
def mixed_requests():
    rng = np.random.default_rng(7)
    lengths = (5, 12, 5, 9, 30, 12, 7, 5, 9, 5)
    return [rng.integers(0, 100, size=length) for length in lengths]


class TestWeightState:
    def test_export_covers_every_parameter(self):
        model = EncoderModel.initialize(tiny_test_config(), seed=3)
        state = export_weight_state(model)
        assert sum(a.size for a in state.values()) == model.num_parameters()
        assert len(set(state)) == len(state)

    def test_attach_reproduces_outputs_bitwise(self, fast_registry):
        config = tiny_test_config(compute_dtype="float64")
        source = EncoderModel.initialize(config, seed=3)
        target = EncoderModel.initialize(config, seed=9)  # different weights
        tokens = np.random.default_rng(0).integers(0, 100, size=(2, 8))
        assert not np.array_equal(source.forward(tokens), target.forward(tokens))
        attach_weight_state(target, export_weight_state(source))
        assert np.array_equal(source.forward(tokens), target.forward(tokens))

    def test_attach_rejects_missing_and_mismatched(self):
        model = EncoderModel.initialize(tiny_test_config(), seed=3)
        state = export_weight_state(model)
        partial = dict(state)
        partial.pop("pooler.weight")
        with pytest.raises(ValueError, match="missing"):
            attach_weight_state(model, partial)
        bad_shape = dict(state)
        bad_shape["pooler.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError, match="shape"):
            attach_weight_state(model, bad_shape)

    def test_store_roundtrip_and_readonly(self):
        model = EncoderModel.initialize(tiny_test_config(), seed=3)
        state = export_weight_state(model)
        store = SharedWeightStore(state)
        try:
            views = store.arrays()
            assert set(views) == set(state)
            for name, array in state.items():
                assert np.array_equal(views[name], array)
                with pytest.raises(ValueError):
                    views[name][...] = 0.0
            attached, handles = SharedWeightStore.attach(store.manifest())
            assert all(
                np.array_equal(attached[name], state[name]) for name in state
            )
            for handle in handles:
                handle.close()
        finally:
            store.unlink()
        assert store.unlinked
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=store.manifest()[0][1])


class TestShardedParity:
    def test_forward_bitwise_matches_single_session(
        self, sharded64, single64, mixed_requests
    ):
        """The acceptance gate: sharded worker processes == single session."""
        sharded = sharded64.forward(mixed_requests)
        oracle = single64.forward(mixed_requests)
        for i, (a, b) in enumerate(zip(sharded, oracle)):
            assert np.array_equal(a, b), f"request {i}"

    def test_pooled_bitwise_matches_single_session(
        self, sharded64, single64, mixed_requests
    ):
        assert np.array_equal(
            sharded64.pooled(mixed_requests), single64.pooled(mixed_requests)
        )

    def test_classify_bitwise_matches_single_session(
        self, sharded64, single64, mixed_requests
    ):
        features = single64.pooled(mixed_requests)
        labels = (features[:, 0] > np.median(features[:, 0])).astype(np.int64)
        head = ClassificationHead.fit(features, labels, num_classes=2, epochs=20)
        assert np.array_equal(
            sharded64.classify(mixed_requests, head),
            single64.classify(mixed_requests, head),
        )

    def test_parent_model_reads_the_shared_blocks(self, sharded64):
        """One copy of the weights per machine: parent rebound onto shm."""
        shared = sharded64._store.arrays()
        state = export_weight_state(sharded64.model)
        for name, array in state.items():
            assert np.shares_memory(array, shared[name]), name
            assert not array.flags.writeable

    def test_dispatch_is_deterministic(self, sharded64, mixed_requests):
        shards = sharded64._shard(mixed_requests)
        assert shards == sharded64._shard(mixed_requests)
        served = sorted(i for shard in shards for batch in shard for i in batch)
        assert served == list(range(len(mixed_requests)))

    def test_serving_queue_runs_unchanged_on_top(
        self, sharded64, single64, mixed_requests
    ):
        """ServingQueue treats the sharded pool exactly like SessionPool."""
        oracle = single64.forward(mixed_requests)
        with ServingQueue(sharded64, max_wait_ms=5.0) as queue:
            results: list = [None] * len(mixed_requests)

            def client(i: int) -> None:
                results[i] = queue.serve_one(mixed_requests[i], timeout=120)

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(mixed_requests))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = queue.stats()
        for i, result in enumerate(results):
            assert np.array_equal(result, oracle[i]), f"request {i}"
        assert stats.completed == len(mixed_requests)
        assert stats.failed == 0

    def test_calibrate_broadcasts_to_workers(self, fast_registry):
        spec = BackendSpec.nn_lut().with_calibration("layernorm")
        config = SessionConfig(model_family="tiny", compute_dtype="float64")
        rng = np.random.default_rng(6)
        samples = [rng.integers(0, 100, size=length) for length in (8, 12, 8, 16)]
        with ShardedPool(
            config, spec=spec, registry=fast_registry, num_replicas=1
        ) as pool:
            calibrated = pool.calibrate(samples)
            assert "rsqrt" in calibrated
            # The parent template serves the calibrated backend; the worker
            # must serve the exact same tables, bit for bit.
            expected = pool._template.forward(samples)
            served = pool.forward(samples)
        for i, (a, b) in enumerate(zip(served, expected)):
            assert np.array_equal(a, b), f"sample {i}"


class _FakeTransport:
    """Channel stub for protocol-level client tests (no worker process)."""

    def send(self, op, payload):
        pass

    def release(self):
        pass


class _FakeProcess:
    pid = 4242
    exitcode = None

    @staticmethod
    def is_alive():
        return True


class TestWireProtocol:
    """Status-word handling in _ShardClient, with the channel stubbed out."""

    @staticmethod
    def _client(status, value):
        client = sharding._ShardClient(0, _FakeProcess(), _FakeTransport(), 1.0)
        client._recv = lambda timeout_s, context: (status, value)
        return client

    def test_error_status_carries_the_worker_traceback(self):
        client = self._client("error", "Traceback: boom")
        with pytest.raises(RuntimeError, match=r"raised while serving 'ping'"):
            client._call("ping", None)

    def test_unexpected_status_is_reported_as_protocol_drift(self):
        # A desynchronised channel must not present its payload as a worker
        # traceback — the status word itself is the diagnostic.
        client = self._client("gibberish", None)
        with pytest.raises(RuntimeError, match=r"unexpected status 'gibberish'"):
            client._call("ping", None)

    def test_wait_ready_rejects_non_init_status(self):
        client = self._client("ok", None)
        with pytest.raises(RuntimeError, match=r"unexpected status 'ok'"):
            client.wait_ready(1.0)


class TestShardedFailureModes:
    def test_rejects_bad_replica_count(self, fast_registry):
        with pytest.raises(ValueError, match="num_replicas"):
            ShardedPool(
                SessionConfig(model_family="tiny"),
                registry=fast_registry,
                num_replicas=0,
            )

    def test_worker_death_mid_service(self, fast_registry, mixed_requests):
        config = SessionConfig(
            model_family="tiny", compute_dtype="float64", max_batch_size=3
        )
        pool = ShardedPool(
            config, spec=BackendSpec.nn_lut(), registry=fast_registry,
            num_replicas=2,
        )
        try:
            victim = pool.sessions[1]
            victim.process.kill()
            victim.process.join(10)
            with pytest.raises(WorkerDiedError, match="shard worker 1"):
                pool.forward(mixed_requests)
            # The surviving replica keeps serving direct traffic.
            survivor = pool.sessions[0]
            result = survivor.forward(mixed_requests[:2])
            assert [r.shape[0] for r in result] == [
                r.size for r in mixed_requests[:2]
            ]
            manifest = pool._store.manifest()
        finally:
            pool.close()
        # close() after a worker death still unlinks every block.
        for _, shm_name, _, _ in manifest:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=shm_name)
        with pytest.raises(RuntimeError, match="closed"):
            pool.forward(mixed_requests[:1])

    def test_healthy_replica_keeps_serving_the_queue_after_a_death(
        self, fast_registry, mixed_requests
    ):
        # Regression: the queue worker thread bound to a dead replica kept
        # popping batches from the shared queue and failing them instantly,
        # outracing (and starving) the healthy replica.  It must stop
        # consuming once its replica is defunct.
        config = SessionConfig(
            model_family="tiny", compute_dtype="float64", max_batch_size=3
        )
        pool = ShardedPool(
            config, spec=BackendSpec.nn_lut(), registry=fast_registry,
            num_replicas=2,
        )
        try:
            pool.sessions[1].process.kill()
            pool.sessions[1].process.join(10)
            assert pool.sessions[1].defunct
            failures = successes = 0
            with ServingQueue(pool, max_wait_ms=0.0) as queue:
                for _ in range(4):
                    try:
                        queue.serve_one(mixed_requests[0], timeout=60)
                        successes += 1
                    except WorkerDiedError:
                        failures += 1
            # The dead replica's thread fails at most the one batch it pops
            # before exiting; everything after is served by the survivor.
            assert failures <= 1 and successes >= 3
        finally:
            pool.close()

    def test_queue_futures_fail_descriptively_on_worker_death(
        self, fast_registry, mixed_requests
    ):
        config = SessionConfig(
            model_family="tiny", compute_dtype="float64", max_batch_size=3
        )
        pool = ShardedPool(
            config, spec=BackendSpec.nn_lut(), registry=fast_registry,
            num_replicas=1,
        )
        try:
            pool.sessions[0].process.kill()
            pool.sessions[0].process.join(10)
            with ServingQueue(pool, max_wait_ms=0.0) as queue:
                future = queue.submit(mixed_requests[0])
                with pytest.raises(WorkerDiedError, match="shard worker 0"):
                    future.result(timeout=30)
                assert queue.stats().failed == 1
                # With its whole fleet dead, the queue must fail fast rather
                # than silently accept requests nothing will ever serve.
                deadline = time.monotonic() + 10
                while True:
                    try:
                        late = queue.submit(mixed_requests[0])
                    except ServerClosedError:
                        break  # queue closed itself
                    with pytest.raises((WorkerDiedError, ServerClosedError)):
                        late.result(timeout=30)
                    assert time.monotonic() < deadline, (
                        "queue never closed itself after its last replica died"
                    )
        finally:
            pool.close()

    def test_close_restores_private_writable_weights(self, fast_registry):
        # Regression: close() left an adopted model rebound onto read-only
        # (and by then unlinked) shared-memory views, breaking later
        # in-place weight edits the caller is entitled to make.
        model = EncoderModel.initialize(
            tiny_test_config(compute_dtype="float64"), seed=3
        )
        before = {
            name: array.copy()
            for name, array in export_weight_state(model).items()
        }
        pool = ShardedPool.from_model(
            model, spec=BackendSpec.nn_lut(), registry=fast_registry,
            num_replicas=1,
        )
        assert not model.pooler.weight.flags.writeable  # serving off shm
        pool.close()
        after = export_weight_state(model)
        for name, array in after.items():
            assert array.flags.writeable, name
            assert np.array_equal(array, before[name]), name
        model.pooler.weight[0, 0] += 1.0  # in-place edits work again

    def test_gc_without_close_restores_weights_and_unlinks(self, fast_registry):
        # The GC safety net must do everything close() does to the shared
        # resources: a caller who drops the pool still gets their model's
        # private writable weights back, and the shm names must not leak.
        model = EncoderModel.initialize(
            tiny_test_config(compute_dtype="float64"), seed=3
        )
        pool = ShardedPool.from_model(
            model, spec=BackendSpec.nn_lut(), registry=fast_registry,
            num_replicas=1,
        )
        manifest = pool._store.manifest()
        process = pool.sessions[0].process
        assert not model.pooler.weight.flags.writeable
        del pool
        gc.collect()
        assert model.pooler.weight.flags.writeable
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=manifest[0][1])
        process.join(10)  # the worker exits on pipe EOF
        assert not process.is_alive()

    def test_calibrate_on_closed_pool_raises_before_refitting(
        self, fast_registry
    ):
        spec = BackendSpec.nn_lut().with_calibration("layernorm")
        pool = ShardedPool(
            SessionConfig(model_family="tiny", compute_dtype="float64"),
            spec=spec, registry=fast_registry, num_replicas=1,
        )
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.calibrate([np.arange(4)])

    def test_construction_failure_unlinks_shared_memory(
        self, fast_registry, monkeypatch
    ):
        stores = []
        real_store = sharding.SharedWeightStore

        class SpyStore(real_store):
            def __init__(self, arrays):
                super().__init__(arrays)
                stores.append(self)

        def exploding_wait_ready(self, timeout_s):
            raise RuntimeError("boom: simulated worker init failure")

        monkeypatch.setattr(sharding, "SharedWeightStore", SpyStore)
        monkeypatch.setattr(sharding._ShardClient, "wait_ready", exploding_wait_ready)
        with pytest.raises(RuntimeError, match="boom"):
            ShardedPool(
                SessionConfig(model_family="tiny", compute_dtype="float64"),
                spec=BackendSpec.nn_lut(),
                registry=fast_registry,
                num_replicas=1,
            )
        (store,) = stores
        assert store.unlinked
        for _, shm_name, _, _ in store.manifest():
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=shm_name)


class TestWorkerTransports:
    """The transport seam: knob validation, ring routing, degradation."""

    def test_unknown_transport_rejected_before_spawning(self, fast_registry):
        with pytest.raises(ValueError, match="carrier_pigeon"):
            ShardedPool(
                SessionConfig(model_family="tiny"),
                registry=fast_registry,
                transport="carrier_pigeon",
            )

    def test_negative_ring_bytes_rejected(self, fast_registry):
        with pytest.raises(ValueError, match="ring_bytes"):
            ShardedPool(
                SessionConfig(model_family="tiny"),
                registry=fast_registry,
                transport="shm_ring",
                ring_bytes=-1,
            )

    def test_hot_path_routes_through_the_rings(self, sharded64, mixed_requests):
        if sharded64.transport_name != "shm_ring":
            pytest.skip("ring-routing stats only exist on the shm transport")
        before = [dict(c.transport.stats) for c in sharded64.sessions]
        sharded64.forward(mixed_requests)
        for client, b in zip(sharded64.sessions, before):
            stats = client.transport.stats
            sent = stats["ring_requests"] - b["ring_requests"]
            answered = stats["ring_responses"] - b["ring_responses"]
            assert sent >= 1, "forward batches should ride the request ring"
            assert answered == sent, "every ring request got a ring response"
            assert stats["pipe_requests"] == b["pipe_requests"]
            assert client.transport.slots_in_use == 0

    def test_capacity_overflow_falls_back_to_pipe_bitwise(
        self, fast_registry, mixed_requests
    ):
        # Rings too small for any batch: the transport must degrade to the
        # pickle pipe — same results, no error, routing visible in stats.
        config = SessionConfig(
            model_family="tiny", compute_dtype="float64", max_batch_size=3
        )
        with ShardedPool(
            config, spec=BackendSpec.nn_lut(), registry=fast_registry,
            num_replicas=1, transport="shm_ring", ring_bytes=16,
        ) as pool:
            single = InferenceSession.from_model(
                pool.model, spec=pool.spec, registry=fast_registry,
                max_batch_size=3,
            )
            served = pool.forward(mixed_requests)
            oracle = single.forward(mixed_requests)
            for i, (a, b) in enumerate(zip(served, oracle)):
                assert np.array_equal(a, b), f"request {i}"
            stats = pool.sessions[0].transport.stats
            assert stats["ring_requests"] == 0
            assert stats["pipe_requests"] >= 1
            assert pool.sessions[0].transport.slots_in_use == 0

    def test_worker_death_releases_slots_and_close_unlinks_rings(
        self, fast_registry, mixed_requests
    ):
        config = SessionConfig(
            model_family="tiny", compute_dtype="float64", max_batch_size=3
        )
        pool = ShardedPool(
            config, spec=BackendSpec.nn_lut(), registry=fast_registry,
            num_replicas=2, transport="shm_ring",
        )
        try:
            ring_names = [
                name
                for client in pool.sessions
                for name in client.transport.shm_names()
            ]
            assert len(ring_names) == 4  # request+response ring per worker
            victim = pool.sessions[1]
            victim.process.kill()
            victim.process.join(10)
            with pytest.raises(WorkerDiedError, match="shard worker 1"):
                pool.forward(mixed_requests)
            # Whatever the failed shard occupied in the rings is released;
            # the healthy worker's slots drained normally.
            for client in pool.sessions:
                assert client.transport.slots_in_use == 0
        finally:
            pool.close()
        # close() unlinks the ring blocks (alongside the weight blocks),
        # dead worker or not.
        for name in ring_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_gc_without_close_unlinks_rings(self, fast_registry):
        # The GC safety net must reap the ring blocks exactly like the
        # weight blocks: dropping a pool without close() leaks nothing.
        model = EncoderModel.initialize(
            tiny_test_config(compute_dtype="float64"), seed=3
        )
        pool = ShardedPool.from_model(
            model, spec=BackendSpec.nn_lut(), registry=fast_registry,
            num_replicas=1, transport="shm_ring",
        )
        names = pool.sessions[0].transport.shm_names()
        process = pool.sessions[0].process
        del pool
        gc.collect()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        process.join(10)  # the worker exits on pipe EOF
        assert not process.is_alive()


class TestNativeKernelSharding:
    """The compiled-kernel knob survives the spec round trip into workers.

    ``SessionConfig(kernel="native")`` must reach every spawned replica
    through the serialized spec and still serve bitwise-identically to the
    parent template session — on both worker transports.
    """

    @pytest.mark.skipif(
        not native_available(), reason="compiled native kernel unavailable"
    )
    @pytest.mark.parametrize("transport", ["pipe", "shm_ring"])
    def test_sharded_native_parity(self, transport, fast_registry, mixed_requests):
        config = SessionConfig(
            model_family="tiny", compute_dtype="float64", max_batch_size=3,
            kernel="native",
        )
        pool = ShardedPool(
            config, spec=BackendSpec.nn_lut(), registry=fast_registry,
            num_replicas=2, transport=transport,
        )
        try:
            # The session knob overrode the default spec kernel, so the
            # serialized spec the workers rebuild from carries it too.
            assert pool.spec.kernel == "native"
            assert pool.template.backend.kernel is not None
            assert pool.template.backend.kernel.name == "native"
            oracle = InferenceSession.from_model(
                pool.model, spec=pool.spec, registry=fast_registry,
                max_batch_size=3,
            )
            sharded = pool.forward(mixed_requests)
            single = oracle.forward(mixed_requests)
            for i, (a, b) in enumerate(zip(sharded, single)):
                assert np.array_equal(a, b), f"request {i}"
            assert np.array_equal(
                pool.pooled(mixed_requests), oracle.pooled(mixed_requests)
            )
        finally:
            pool.close()
