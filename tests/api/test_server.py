"""Concurrent serving: SessionPool sharding, ServingQueue scheduling, parity.

This is the tier-1 smoke run of the concurrent server the ISSUE calls for:
a tiny model, two replicas, mixed-length traffic submitted from real client
threads, gated on *bitwise* parity with single-session serving (float64
engine, exact-length bucketing).  If the scheduler or the pool ever groups,
pads or dispatches differently, the parity gates here fail.
"""

import threading
import time

import numpy as np
import pytest

from repro.api import (
    BackendSpec,
    DeadlineExceededError,
    InferenceSession,
    QueueFullError,
    ServerClosedError,
    ServingQueue,
    SessionConfig,
    SessionPool,
)
from repro.transformer.heads import ClassificationHead


@pytest.fixture(scope="module")
def pool64(fast_registry):
    config = SessionConfig(
        model_family="tiny", compute_dtype="float64", max_batch_size=3
    )
    return SessionPool(
        config, spec=BackendSpec.nn_lut(), registry=fast_registry, num_replicas=2
    )


@pytest.fixture(scope="module")
def single64(pool64, fast_registry):
    """Single-session serving over the same frozen model (the parity oracle)."""
    return InferenceSession.from_model(
        pool64.model, spec=pool64.spec, registry=fast_registry, max_batch_size=3
    )


@pytest.fixture(scope="module")
def mixed_requests():
    rng = np.random.default_rng(7)
    lengths = (5, 12, 5, 9, 30, 12, 7, 5, 9, 5)
    return [rng.integers(0, 100, size=length) for length in lengths]


class TestSessionPool:
    def test_replicas_share_the_frozen_model(self, pool64):
        assert pool64.num_replicas == 2
        first, second = pool64.sessions
        assert second.model is first.model  # one copy of the weights
        assert second.backend is not first.backend  # own recorder/wrappers
        assert second._batcher is not first._batcher  # own packing buffers

    def test_forward_bitwise_matches_single_session(
        self, pool64, single64, mixed_requests
    ):
        pooled = pool64.forward(mixed_requests)
        single = single64.forward(mixed_requests)
        for i, (a, b) in enumerate(zip(pooled, single)):
            assert np.array_equal(a, b), f"request {i}"

    def test_forward_bitwise_matches_per_call(self, pool64, mixed_requests):
        outputs = pool64.forward(mixed_requests)
        model, backend = pool64.model, pool64.sessions[0].backend
        for i, request in enumerate(mixed_requests):
            per_call = model.forward(request[None, :], backend=backend)
            assert np.array_equal(per_call[0], outputs[i]), f"request {i}"

    def test_pooled_bitwise_matches_single_session(
        self, pool64, single64, mixed_requests
    ):
        assert np.array_equal(
            pool64.pooled(mixed_requests), single64.pooled(mixed_requests)
        )

    def test_dispatch_is_deterministic(self, pool64, mixed_requests):
        shards = pool64._shard(mixed_requests)
        assert shards == pool64._shard(mixed_requests)
        served = sorted(i for shard in shards for batch in shard for i in batch)
        assert served == list(range(len(mixed_requests)))

    def test_empty_request_list(self, pool64):
        assert pool64.forward([]) == []
        assert pool64.pooled([]).shape == (0, pool64.model.config.hidden_size)

    def test_classify_matches_session(self, pool64, single64, mixed_requests):
        features = single64.pooled(mixed_requests)
        labels = (features[:, 0] > np.median(features[:, 0])).astype(np.int64)
        head = ClassificationHead.fit(features, labels, num_classes=2, epochs=20)
        assert np.array_equal(
            pool64.classify(mixed_requests, head),
            single64.classify(mixed_requests, head),
        )
        with pytest.raises(TypeError, match="ClassificationHead"):
            pool64.classify(mixed_requests, head=object())

    def test_single_replica_pool(self, fast_registry, mixed_requests, single64):
        pool = SessionPool(
            SessionConfig(model_family="tiny", compute_dtype="float64"),
            spec=BackendSpec.nn_lut(),
            registry=fast_registry,
            num_replicas=1,
        )
        outputs = pool.forward(mixed_requests[:3])
        single = single64.forward(mixed_requests[:3])
        assert all(np.array_equal(a, b) for a, b in zip(outputs, single))

    def test_rejects_bad_replica_count(self, fast_registry):
        with pytest.raises(ValueError, match="num_replicas"):
            SessionPool(
                SessionConfig(model_family="tiny"),
                registry=fast_registry,
                num_replicas=0,
            )

    def test_from_model_adopts_engine_settings(self, pool64, fast_registry):
        pool = SessionPool.from_model(
            pool64.model, spec=pool64.spec, registry=fast_registry, num_replicas=2
        )
        assert pool.config.model_family == "custom"
        assert pool.config.compute_dtype == "float64"
        assert pool.model is pool64.model


class TestServingQueue:
    def test_concurrent_clients_bitwise_parity(
        self, pool64, single64, mixed_requests
    ):
        """The acceptance gate: threaded traffic == single-session, bitwise."""
        oracle = single64.forward(mixed_requests)
        with ServingQueue(pool64, max_wait_ms=5.0) as queue:
            results: list = [None] * len(mixed_requests)

            def client(i: int) -> None:
                results[i] = queue.serve_one(mixed_requests[i], timeout=60)

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(mixed_requests))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = queue.stats()
        for i, result in enumerate(results):
            assert np.array_equal(result, oracle[i]), f"request {i}"
        assert stats.submitted == stats.completed == len(mixed_requests)
        assert stats.rejected == stats.expired == stats.failed == 0
        assert stats.batches >= 1 and stats.mean_batch_size >= 1.0
        assert 0.0 < stats.p50_latency_ms <= stats.p99_latency_ms
        assert stats.throughput_rps > 0

    def test_burst_serve_returns_in_request_order(
        self, pool64, single64, mixed_requests
    ):
        oracle = single64.forward(mixed_requests)
        with ServingQueue(pool64, max_wait_ms=5.0) as queue:
            results = queue.serve(mixed_requests, timeout=60)
            queue.drain(timeout=30)
        assert all(np.array_equal(a, b) for a, b in zip(results, oracle))

    def test_wraps_a_bare_session(self, single64, mixed_requests):
        with ServingQueue(single64, max_wait_ms=1.0) as queue:
            assert queue.pool.num_replicas == 1
            result = queue.serve_one(mixed_requests[0], timeout=60)
        assert np.array_equal(result, single64.forward(mixed_requests[:1])[0])

    def test_overload_rejection_and_deferred_start(self, pool64, mixed_requests):
        queue = ServingQueue(pool64, max_queue_depth=2, start=False)
        first = queue.submit(mixed_requests[0])
        queue.submit(mixed_requests[1], deadline_ms=0.0)
        with pytest.raises(QueueFullError, match="max_queue_depth"):
            queue.submit(mixed_requests[2])
        assert queue.stats().rejected == 1
        queue.start()
        assert first.result(timeout=60).shape[0] == mixed_requests[0].size
        queue.close()

    def test_deadline_expires_before_dispatch(self, pool64, mixed_requests):
        queue = ServingQueue(pool64, start=False)
        expired = queue.submit(mixed_requests[0], deadline_ms=0.0)
        import time

        time.sleep(0.005)
        queue.start()
        with pytest.raises(DeadlineExceededError, match="deadline"):
            expired.result(timeout=60)
        assert queue.stats().expired == 1
        queue.close()

    def test_close_fails_pending_and_rejects_new(self, pool64, mixed_requests):
        queue = ServingQueue(pool64, start=False)
        pending = queue.submit(mixed_requests[0])
        queue.close()
        with pytest.raises(ServerClosedError):
            pending.result(timeout=5)
        with pytest.raises(ServerClosedError):
            queue.submit(mixed_requests[0])
        queue.close()  # idempotent
        with pytest.raises(ServerClosedError):
            queue.start()

    @pytest.mark.parametrize(
        "bad, match",
        [
            (np.zeros((2, 3), dtype=np.int64), "1-D"),
            (np.array([], dtype=np.int64), "1-D|non-empty"),
            (np.array([0.5, 1.5]), "integer"),
            (np.arange(100), "maximum sequence length"),
        ],
    )
    def test_rejects_malformed_requests(self, pool64, bad, match):
        queue = ServingQueue(pool64, start=False)
        with pytest.raises(ValueError, match=match):
            queue.submit(bad)
        queue.close()

    def test_rejects_bad_knobs(self, pool64):
        with pytest.raises(ValueError, match="max_wait_ms"):
            ServingQueue(pool64, max_wait_ms=-1, start=False)
        with pytest.raises(ValueError, match="max_queue_depth"):
            ServingQueue(pool64, max_queue_depth=0, start=False)
        with pytest.raises(TypeError, match="SessionPool"):
            ServingQueue(object())  # type: ignore[arg-type]


def _gated_single_replica_pool(pool64, fast_registry):
    """A 1-replica pool whose forwards block on a gate (backlog on demand)."""
    pool = SessionPool.from_model(
        pool64.model, spec=pool64.spec, registry=fast_registry,
        num_replicas=1, max_batch_size=8,
    )
    gate = threading.Event()
    inner = pool.sessions[0].forward

    def gated_forward(requests):
        gate.wait(30)
        return inner(requests)

    pool.sessions[0].forward = gated_forward  # type: ignore[method-assign]
    return pool, gate


def _wait_for_inflight(queue: ServingQueue, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while queue._inflight_batches == 0:
        if time.monotonic() > deadline:
            raise TimeoutError("no batch reached a worker in time")
        time.sleep(0.001)


class TestOverloadAndDeadlines:
    def test_formed_and_inflight_requests_count_toward_depth(
        self, pool64, fast_registry, mixed_requests
    ):
        # Regression: admission control only bounded the pending deque, so
        # the scheduler's pending->formed drain defeated max_queue_depth and
        # the batch queue grew without bound under overload.
        pool, gate = _gated_single_replica_pool(pool64, fast_registry)
        queue = ServingQueue(pool, max_wait_ms=0.0, max_queue_depth=2)
        try:
            first = queue.submit(mixed_requests[0])
            _wait_for_inflight(queue)  # in flight, no longer pending
            second = queue.submit(mixed_requests[1])  # backlog now 2
            with pytest.raises(QueueFullError, match="max_queue_depth"):
                queue.submit(mixed_requests[2])
            gate.set()
            assert first.result(timeout=60).shape[0] == mixed_requests[0].size
            assert second.result(timeout=60).shape[0] == mixed_requests[1].size
            assert queue.stats().queue_depth == 0
        finally:
            gate.set()
            queue.close()

    def test_deadline_rechecked_when_worker_picks_batch_up(
        self, pool64, fast_registry, mixed_requests
    ):
        # Regression: deadlines were only checked at window close, so a
        # request stuck in a formed batch behind a backlog was served
        # arbitrarily late instead of failing.
        pool, gate = _gated_single_replica_pool(pool64, fast_registry)
        queue = ServingQueue(pool, max_wait_ms=0.0, max_queue_depth=16)
        try:
            blocker = queue.submit(mixed_requests[0])
            _wait_for_inflight(queue)
            doomed = queue.submit(mixed_requests[1], deadline_ms=100.0)
            time.sleep(0.15)  # deadline lapses while the batch sits formed
            gate.set()
            assert blocker.result(timeout=60).shape[0] == mixed_requests[0].size
            with pytest.raises(DeadlineExceededError, match="deadline"):
                doomed.result(timeout=60)
            assert queue.stats().expired == 1
        finally:
            gate.set()
            queue.close()


class TestQueueContract:
    """Regression tests for the documented ServingQueue behaviours."""

    def test_serve_timeout_is_one_shared_deadline(
        self, pool64, fast_registry
    ):
        # Regression: serve() applied `timeout` to each future sequentially,
        # so a burst whose requests each complete just under the timeout
        # could block for up to N x timeout.  One shared deadline must cover
        # the whole burst.
        pool = SessionPool.from_model(
            pool64.model, spec=pool64.spec, registry=fast_registry,
            num_replicas=1, max_batch_size=8,
        )
        gate = threading.Semaphore(0)
        inner = pool.sessions[0].forward

        def gated_forward(requests):
            gate.acquire()
            return inner(requests)

        pool.sessions[0].forward = gated_forward  # type: ignore[method-assign]
        # Strictly increasing lengths: each request is its own batch AND the
        # (length-sorted) dispatch order matches the submission order, so
        # under the old per-future rule every wait stays just under the
        # timeout and serve() blocks for the full N x timeout.
        rng = np.random.default_rng(5)
        burst = [rng.integers(0, 100, size=length) for length in (5, 9, 12, 30)]
        queue = ServingQueue(pool, max_wait_ms=0.0, max_batch_size=1)
        stop = threading.Event()

        def driver() -> None:  # completes one batch every 0.2 s
            while not stop.is_set():
                time.sleep(0.2)
                gate.release()

        thread = threading.Thread(target=driver, daemon=True)
        thread.start()
        start = time.monotonic()
        try:
            with pytest.raises(TimeoutError):
                queue.serve(burst, timeout=0.35)
            elapsed = time.monotonic() - start
            assert elapsed < 0.75, (
                f"serve() blocked {elapsed:.2f}s — the timeout stacked "
                "per future instead of being one shared deadline"
            )
        finally:
            stop.set()
            for _ in range(8):
                gate.release()
            queue.close()

    def test_drain_raises_when_closed_mid_drain(
        self, pool64, fast_registry, mixed_requests
    ):
        # Regression: drain() returned silently when the queue was closed
        # mid-drain with backlog still present — reporting "drained" for a
        # backlog that will never be served.
        pool, gate = _gated_single_replica_pool(pool64, fast_registry)
        queue = ServingQueue(pool, max_wait_ms=0.0, max_queue_depth=8)
        try:
            queue.submit(mixed_requests[0])
            _wait_for_inflight(queue)
            closer = threading.Timer(0.05, lambda: queue.close(timeout=0.2))
            closer.start()
            with pytest.raises(ServerClosedError, match="drain"):
                queue.drain(timeout=30)
            closer.join()
        finally:
            gate.set()
            queue.close()

    def test_drain_after_fully_served_close_is_silent(
        self, pool64, mixed_requests
    ):
        # The closed-mid-drain error must not fire when close() raced in
        # after every request was genuinely served: nothing was discarded,
        # so the backlog really did drain.
        queue = ServingQueue(pool64, max_wait_ms=1.0)
        queue.serve(mixed_requests[:2], timeout=60)
        queue.drain(timeout=30)
        queue.close()
        queue.drain(timeout=5)  # closed, but nothing was ever dropped

    def test_batch_failure_gives_each_future_its_own_error(
        self, pool64, fast_registry
    ):
        # Regression: every future in a failed batch re-raised the *same*
        # exception instance, so concurrent result() calls raced on its
        # shared mutable __traceback__.
        pool = SessionPool.from_model(
            pool64.model, spec=pool64.spec, registry=fast_registry,
            num_replicas=1, max_batch_size=8,
        )

        def exploding_forward(requests):
            raise RuntimeError("boom")

        pool.sessions[0].forward = exploding_forward  # type: ignore[method-assign]
        queue = ServingQueue(pool, max_wait_ms=50.0)
        try:
            rng = np.random.default_rng(3)
            futures = [
                queue.submit(rng.integers(0, 100, size=6)) for _ in range(2)
            ]
            errors: list = []

            def probe(future) -> None:
                try:
                    future.result(timeout=30)
                except RuntimeError as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=probe, args=(future,))
                for future in futures
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(errors) == 2
            first, second = errors
            assert first is not second  # each future owns its instance
            assert type(first) is RuntimeError and first.args == ("boom",)
            assert second.args == ("boom",)
            # The original failure stays attached for debugging.
            assert first.__cause__ is second.__cause__
            assert first.__cause__ is not None
            assert queue.stats().failed == 2
        finally:
            queue.close()

    def test_reset_stats_starts_a_new_window(self, pool64, mixed_requests):
        queue = ServingQueue(pool64, max_wait_ms=1.0)
        try:
            queue.serve(mixed_requests[:4], timeout=60)
            queue.drain(timeout=30)
            before = queue.stats()
            assert before.submitted == before.completed == 4
            assert before.p50_latency_ms > 0
            queue.reset_stats()
            zeroed = queue.stats()
            assert zeroed.submitted == zeroed.completed == 0
            assert zeroed.batches == 0 and zeroed.mean_batch_size == 0.0
            assert zeroed.p50_latency_ms == zeroed.p99_latency_ms == 0.0
            assert zeroed.mean_queue_wait_ms == zeroed.p99_queue_wait_ms == 0.0
            assert zeroed.mean_service_ms == zeroed.p99_service_ms == 0.0
            assert zeroed.throughput_rps == 0.0
            assert zeroed.queue_depth == 0
            assert zeroed.retry_attempts == zeroed.retried_requests == 0
            assert zeroed.breaker_opens == zeroed.breaker_closes == 0
            assert zeroed.integrity_failures == zeroed.expired_in_flight == 0
            queue.serve(mixed_requests[4:6], timeout=60)
            queue.drain(timeout=30)
            window = queue.stats()
            assert window.submitted == window.completed == 2
            assert window.p50_latency_ms > 0 and window.throughput_rps > 0
        finally:
            queue.close()

    def test_resilience_counters_zero_on_healthy_traffic(
        self, pool64, mixed_requests
    ):
        # Fault-free serving without retry/breaker configured must leave
        # every resilience counter untouched and report closed breakers.
        queue = ServingQueue(pool64, max_wait_ms=1.0)
        try:
            queue.serve(mixed_requests[:4], timeout=60)
            queue.drain(timeout=30)
            stats = queue.stats()
            assert stats.retry_attempts == stats.retried_requests == 0
            assert stats.breaker_opens == stats.breaker_closes == 0
            assert stats.integrity_failures == stats.expired_in_flight == 0
            for replica in stats.replicas:
                assert replica.errors == replica.timeouts == 0
                assert replica.breaker_state == "closed"
                # Served traffic seeds the latency EWMA.
                assert replica.service_ewma_ms >= 0.0
        finally:
            queue.close()

    def test_reset_stats_leaves_backlog_accounting_untouched(
        self, pool64, fast_registry, mixed_requests
    ):
        pool, gate = _gated_single_replica_pool(pool64, fast_registry)
        queue = ServingQueue(pool, max_wait_ms=0.0, max_queue_depth=2)
        try:
            first = queue.submit(mixed_requests[0])
            _wait_for_inflight(queue)
            queue.reset_stats()
            stats = queue.stats()
            assert stats.queue_depth == 1  # the in-flight request survives
            assert stats.max_queue_depth_seen == 1
            second = queue.submit(mixed_requests[1])
            with pytest.raises(QueueFullError):  # admission control intact
                queue.submit(mixed_requests[2])
            gate.set()
            assert first.result(timeout=60).shape[0] == mixed_requests[0].size
            assert second.result(timeout=60).shape[0] == mixed_requests[1].size
        finally:
            gate.set()
            queue.close()


class TestCalibratedServing:
    def test_wrapped_session_keeps_calibrated_tables(self, fast_registry):
        # Regression: wrapping a calibrated InferenceSession rebuilt the
        # backend from the bare spec, silently serving uncalibrated tables.
        spec = BackendSpec.nn_lut().with_calibration("layernorm")
        session = InferenceSession(
            SessionConfig(model_family="tiny", compute_dtype="float64"),
            spec=spec,
            registry=fast_registry,
        )
        rng = np.random.default_rng(5)
        samples = [rng.integers(0, 100, size=length) for length in (8, 12, 8, 16)]
        session.calibrate(samples)
        expected = session.forward(samples)
        with ServingQueue(session, max_wait_ms=1.0) as queue:
            results = queue.serve(samples, timeout=120)
        for i, (result, reference) in enumerate(zip(results, expected)):
            assert np.array_equal(result, reference), f"request {i}"

    def test_pool_calibrate_updates_every_replica(self, fast_registry):
        spec = BackendSpec.nn_lut().with_calibration("layernorm")
        pool = SessionPool(
            SessionConfig(model_family="tiny", compute_dtype="float64"),
            spec=spec,
            registry=fast_registry,
            num_replicas=2,
        )
        rng = np.random.default_rng(6)
        samples = [rng.integers(0, 100, size=length) for length in (8, 12, 8, 16)]
        calibrated = pool.calibrate(samples)
        for session in pool.sessions:
            assert session.lut_overrides["rsqrt"] is calibrated["rsqrt"]
            assert session.backend.name == "nn-lut-fp32+cal"
        # Every replica serves the calibrated backend identically.
        primary_out = pool.sessions[0].forward(samples)
        replica_out = pool.sessions[1].forward(samples)
        assert all(
            np.array_equal(a, b) for a, b in zip(primary_out, replica_out)
        )
        pooled_out = pool.forward(samples)
        assert all(
            np.array_equal(a, b) for a, b in zip(pooled_out, primary_out)
        )


class TestLatencySplit:
    """stats() separates queue-wait from service (dispatch -> result) time."""

    def test_phases_partition_the_total_latency(self, pool64, mixed_requests):
        queue = ServingQueue(pool64, max_wait_ms=1.0)
        try:
            queue.serve(mixed_requests, timeout=60)
            queue.drain(timeout=30)
            stats = queue.stats()
            assert stats.mean_service_ms > 0.0
            assert stats.mean_queue_wait_ms >= 0.0
            assert stats.p50_service_ms <= stats.p99_service_ms
            assert stats.p50_queue_wait_ms <= stats.p99_queue_wait_ms
            # Every request's latency is exactly queue-wait + service (same
            # timestamps), so the means partition the mean latency.
            assert stats.mean_latency_ms == pytest.approx(
                stats.mean_queue_wait_ms + stats.mean_service_ms, rel=1e-9
            )
        finally:
            queue.close()

    def test_backlog_shows_up_as_queue_wait_not_service(
        self, pool64, fast_registry, mixed_requests
    ):
        # One gated replica: the in-flight request accrues *service* time
        # (its forward is blocked), while the request queued behind it
        # accrues *queue-wait* time.  The split must attribute each side
        # correctly — that is what makes IPC/serving cost visible per
        # window instead of being smeared into one latency number.
        pool, gate = _gated_single_replica_pool(pool64, fast_registry)
        queue = ServingQueue(pool, max_wait_ms=0.0, max_queue_depth=8)
        try:
            first = queue.submit(mixed_requests[0])
            _wait_for_inflight(queue)
            second = queue.submit(mixed_requests[1])
            time.sleep(0.15)  # both requests age behind the gate
            gate.set()
            assert first.result(timeout=60).shape[0] == mixed_requests[0].size
            assert second.result(timeout=60).shape[0] == mixed_requests[1].size
            stats = queue.stats()
            assert stats.p99_service_ms >= 100.0  # the gated forward
            assert stats.p99_queue_wait_ms >= 100.0  # the request behind it
        finally:
            gate.set()
            queue.close()


class TestPerFutureErrorRobustness:
    """The batch-failure clone helper must never raise (see _per_future_error).

    Regression: the clone attempts were wrapped in ``except Exception``, so an
    exception class whose re-construction raised a *BaseException* — or whose
    ``__new__`` returned a non-exception — escaped the helper inside
    ``_worker_loop``'s error path, killed the worker thread, and left every
    future in the batch unresolved: the worker-side error was silently eaten
    and clients hung until their own timeouts.
    """

    def test_baseexception_raising_constructor_is_contained(self):
        from repro.api.server import _per_future_error

        class Hostile(RuntimeError):
            def __init__(self, *args):
                if args and args[0] == "armed":
                    raise KeyboardInterrupt("re-construction bomb")
                super().__init__(*args)

        original = Hostile("disarmed")
        original.args = ("armed",)
        clone = _per_future_error(original)  # must not raise KeyboardInterrupt
        assert isinstance(clone, BaseException)
        assert clone.__cause__ is original

    def test_constructor_returning_non_exception_is_contained(self):
        from repro.api.server import _per_future_error

        class Weird(RuntimeError):
            def __new__(cls, *args):
                return 42  # copy.copy follows __reduce_ex__ into this too

        original = RuntimeError.__new__(Weird)
        original.args = ("x",)
        clone = _per_future_error(original)  # must not AttributeError on 42
        assert isinstance(clone, BaseException)
        assert clone.__cause__ is original

    def test_worker_error_is_delivered_not_silently_eaten(
        self, pool64, fast_registry
    ):
        class Hostile(RuntimeError):
            def __init__(self, *args):
                if args and args[0] == "armed":
                    raise KeyboardInterrupt("re-construction bomb")
                super().__init__(*args)

        pool = SessionPool.from_model(
            pool64.model, spec=pool64.spec, registry=fast_registry,
            num_replicas=1, max_batch_size=8,
        )

        def exploding_forward(requests):
            exc = Hostile("disarmed")
            exc.args = ("armed",)
            raise exc

        pool.sessions[0].forward = exploding_forward  # type: ignore[method-assign]
        queue = ServingQueue(pool, max_wait_ms=10.0)
        try:
            rng = np.random.default_rng(11)
            future = queue.submit(rng.integers(0, 100, size=6))
            with pytest.raises(RuntimeError) as excinfo:
                future.result(timeout=30)
            assert isinstance(excinfo.value.__cause__, Hostile)
            # The worker thread survived: the next request is also answered
            # (with its own failure), not stranded behind a dead worker.
            second = queue.submit(rng.integers(0, 100, size=4))
            with pytest.raises(RuntimeError):
                second.result(timeout=30)
            assert queue.stats().failed == 2
        finally:
            queue.close()
