"""Worker-transport tests: ring codec, fallback, slot hygiene, round trips.

The ring codec tests run in-process against :class:`_ShmRing` directly; the
round-trip tests spawn the echo worker (``_echo_worker_main`` — pure
transport, no model) so both transports are exercised over a real process
boundary, including the degradation paths the ISSUE calls out: payloads
beyond the preallocated ring capacity fall back to the pickle pipe, and the
ring slot accounting is always released after a timeout or worker death.
"""

import multiprocessing
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.api.transport import (
    TRANSPORTS,
    PipeTransport,
    ShmRingTransport,
    TransportError,
    _ShmRing,
    _shutdown_echo_worker,
    _spawn_echo_worker,
    create_transport,
)

SPAWN = multiprocessing.get_context("spawn")


class TestShmRingCodec:
    def _ring(self, payload_bytes=4096):
        return _ShmRing.create(payload_bytes)

    def test_ragged_1d_roundtrip(self):
        ring = self._ring()
        try:
            items = [np.arange(5, dtype=np.int64), np.arange(9, dtype=np.int64)]
            assert ring.try_encode(items, seq=3)
            decoded = ring.decode(3, copy=True)
            assert all(np.array_equal(a, b) for a, b in zip(decoded, items))
            views = ring.decode(3, copy=False)
            assert not views[0].flags.writeable
        finally:
            ring.unlink()
            ring.close()

    def test_ragged_rows_roundtrip(self):
        ring = self._ring()
        try:
            rng = np.random.default_rng(0)
            items = [
                rng.normal(size=(4, 3)).astype(np.float32),
                rng.normal(size=(2, 3)).astype(np.float32),
            ]
            assert ring.try_encode(items, seq=1)
            decoded = ring.decode(1, copy=True)
            assert all(np.array_equal(a, b) for a, b in zip(decoded, items))
        finally:
            ring.unlink()
            ring.close()

    def test_single_array_roundtrip(self):
        ring = self._ring()
        try:
            array = np.random.default_rng(1).normal(size=(3, 2, 4))
            assert ring.try_encode(array, seq=7)
            assert np.array_equal(ring.decode(7, copy=True), array)
        finally:
            ring.unlink()
            ring.close()

    def test_write_into_ring_reservation(self):
        # reserve_ragged hands out the ring's own memory: filling the view
        # IS the packing step the response path uses.  The caller seals the
        # frame once it is done writing (commit_packed_response does this).
        ring = self._ring()
        try:
            flat = ring.reserve_ragged([2, 3], trailing=4, dtype=np.float64, seq=9)
            assert flat.shape == (5, 4)
            flat[...] = np.arange(20).reshape(5, 4)
            ring.seal()
            decoded = ring.decode(9, copy=True)
            assert np.array_equal(decoded[0], flat[:2])
            assert np.array_equal(decoded[1], flat[2:])
        finally:
            ring.unlink()
            ring.close()

    def test_unsealed_reservation_fails_verification(self):
        # Decoding a reservation that was never sealed must not hand back
        # whatever bytes happen to be in the payload region.
        ring = self._ring()
        try:
            flat = ring.reserve_ragged([2], trailing=4, dtype=np.float64, seq=2)
            flat[...] = 1.0
            from repro.api.transport import TransportIntegrityError

            with pytest.raises(TransportIntegrityError, match="checksum"):
                ring.decode(2, copy=True)
        finally:
            ring.unlink()
            ring.close()

    def test_corrupt_payload_byte_raises_integrity_error(self):
        # A single flipped payload byte — what FaultInjector.on_ring_response
        # does — must surface as TransportIntegrityError, not bad data.
        from repro.api.transport import TransportIntegrityError

        ring = self._ring()
        try:
            items = [np.arange(7, dtype=np.int64), np.arange(4, dtype=np.int64)]
            assert ring.try_encode(items, seq=11)
            ring.decode(11, copy=True)  # sealed frame verifies clean
            # salt 5 flips a byte in the ragged lengths prefix (implausible
            # header); salt 40 flips token data (checksum mismatch) — both
            # must surface as the typed integrity error.
            ring.corrupt_payload(salt=40)
            with pytest.raises(TransportIntegrityError, match="checksum"):
                ring.decode(11, copy=True)
            assert ring.try_encode(items, seq=12)
            ring.corrupt_payload(salt=5)
            with pytest.raises(TransportIntegrityError, match="corrupt"):
                ring.decode(12, copy=True)
        finally:
            ring.unlink()
            ring.close()

    def test_corrupt_header_raises_integrity_error(self):
        # An implausible header (e.g. a dtype code no encoder writes) is
        # caught before the payload is even touched.
        from repro.api.transport import TransportIntegrityError

        ring = self._ring()
        try:
            assert ring.try_encode(np.arange(6, dtype=np.float64), seq=4)
            ring._header()[3] = 99  # no such dtype code
            with pytest.raises(TransportIntegrityError, match="impossible"):
                ring.decode(4, copy=True)
        finally:
            ring.unlink()
            ring.close()

    def test_rejects_unsupported_and_oversized(self):
        ring = self._ring(payload_bytes=64)
        try:
            assert not ring.try_encode({"not": "packable"}, seq=1)
            assert not ring.try_encode([], seq=1)
            assert not ring.try_encode(
                [np.array(["a", "b"])], seq=1
            )  # unsupported dtype
            # (n, 0) row blocks would be header-ambiguous with 1-D items.
            assert not ring.try_encode([np.empty((3, 0)), np.empty((2, 0))], seq=1)
            assert not ring.try_encode([np.arange(100, dtype=np.int64)], seq=1)
            assert ring.reserve_ragged([100], 4, np.float64, seq=1) is None
        finally:
            ring.unlink()
            ring.close()

    def test_stale_seq_raises(self):
        ring = self._ring()
        try:
            assert ring.try_encode([np.arange(3, dtype=np.int64)], seq=5)
            with pytest.raises(TransportError, match="seq"):
                ring.decode(6, copy=True)
        finally:
            ring.unlink()
            ring.close()


def test_create_transport_rejects_unknown_kind():
    with pytest.raises(ValueError, match="carrier_pigeon"):
        create_transport("carrier_pigeon", SPAWN)
    assert set(TRANSPORTS) == {"pipe", "shm_ring"}


HIDDEN = 4


def _spawn_echo(kind, request_bytes=1 << 16, response_bytes=1 << 16):
    return _spawn_echo_worker(
        kind, SPAWN, HIDDEN, np.dtype(np.float64),
        request_bytes=request_bytes, response_bytes=response_bytes,
    )


def _shutdown_echo(transport, process):
    _shutdown_echo_worker(transport, process)


@pytest.mark.parametrize("kind", TRANSPORTS)
def test_echo_roundtrip(kind):
    transport, process = _spawn_echo(kind)
    try:
        tokens = [np.arange(6, dtype=np.int64), np.arange(11, dtype=np.int64)]
        transport.send("echo", tokens)
        assert transport.poll(60)
        status, value = transport.recv()
        assert status == "ok"
        assert [v.shape for v in value] == [(6, HIDDEN), (11, HIDDEN)]
        assert all(v.dtype == np.float64 for v in value)
        assert transport.slots_in_use == 0
        if kind == "shm_ring":
            assert transport.stats["ring_requests"] == 1
            assert transport.stats["ring_responses"] == 1
    finally:
        _shutdown_echo(transport, process)


def test_shm_ring_capacity_fallback_still_serves():
    # Rings too small for any payload: every message must degrade to the
    # pickle pipe and still round-trip correctly.
    transport, process = _spawn_echo("shm_ring", request_bytes=8, response_bytes=8)
    try:
        tokens = [np.arange(6, dtype=np.int64)]
        transport.send("echo", tokens)
        assert transport.poll(60)
        status, value = transport.recv()
        assert status == "ok" and value[0].shape == (6, HIDDEN)
        assert transport.stats["ring_requests"] == 0
        assert transport.stats["pipe_requests"] == 1
        assert transport.slots_in_use == 0
    finally:
        _shutdown_echo(transport, process)


def test_shm_ring_response_fallback_when_only_response_overflows():
    # Request fits its ring but the serving-shaped response does not: the
    # worker must fall back to the pipe for the reply alone.
    transport, process = _spawn_echo(
        "shm_ring", request_bytes=1 << 16, response_bytes=8
    )
    try:
        tokens = [np.arange(6, dtype=np.int64)]
        transport.send("echo", tokens)
        assert transport.poll(60)
        status, value = transport.recv()
        assert status == "ok" and value[0].shape == (6, HIDDEN)
        assert transport.stats["ring_requests"] == 1
        assert transport.stats["ring_responses"] == 0
        assert transport.slots_in_use == 0
    finally:
        _shutdown_echo(transport, process)


def test_timeout_release_frees_ring_slot():
    # A timed-out request (the caller will poison the channel) must not
    # leave the ring slot marked in use.
    transport, process = _spawn_echo("shm_ring")
    try:
        transport.send("echo_slow", [np.arange(4, dtype=np.int64)])
        assert transport.slots_in_use == 1
        assert not transport.poll(0.05)
        transport.release()
        assert transport.slots_in_use == 0
    finally:
        process.terminate()  # poisoned channel: put the worker down
        process.join(10)
        transport.close()


def test_worker_death_surfaces_as_eof_and_slot_release():
    transport, process = _spawn_echo("shm_ring")
    names = transport.shm_names()
    assert len(names) == 2
    try:
        process.kill()
        process.join(10)
        # The dead peer surfaces as EPIPE on send or EOF on recv — exactly
        # what the shard client maps to WorkerDiedError before releasing.
        with pytest.raises((BrokenPipeError, EOFError, OSError)):
            transport.send("echo", [np.arange(4, dtype=np.int64)])
            assert transport.poll(60)  # EOF wakes the poll
            while True:  # drain anything buffered, then hit the EOF
                transport.recv()
        transport.release()
        assert transport.slots_in_use == 0
    finally:
        transport.close()
    # close() unlinked both rings even though the worker died.
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


@pytest.mark.parametrize("kind", TRANSPORTS)
def test_send_after_close_raises_transport_error(kind):
    # Both transports must refuse traffic symmetrically once closed —
    # a closed channel is a programming error, not a worker fault.
    transport, process = _spawn_echo(kind)
    try:
        transport.send("echo", [np.arange(3, dtype=np.int64)])
        assert transport.poll(60)
        status, _ = transport.recv()
        assert status == "ok"
    finally:
        _shutdown_echo(transport, process)
    with pytest.raises(TransportError, match="closed"):
        transport.send("echo", [np.arange(3, dtype=np.int64)])


@pytest.mark.parametrize("kind", TRANSPORTS)
def test_close_is_idempotent_and_release_after_close_is_noop(kind):
    transport, process = _spawn_echo(kind)
    _shutdown_echo(transport, process)
    transport.close()  # second close: no-op
    transport.release()  # slot hygiene after close: no-op, no raise
    assert transport.slots_in_use == 0
