"""InferenceSession: batching correctness, bitwise parity, calibration."""

import numpy as np
import pytest

from repro.api import (
    BackendSpec,
    InferenceSession,
    RequestBatcher,
    SessionConfig,
    build_backend,
)
from repro.transformer.heads import ClassificationHead


@pytest.fixture(scope="module")
def tiny64_config():
    return SessionConfig(model_family="tiny", compute_dtype="float64", max_batch_size=3)


@pytest.fixture(scope="module")
def tiny64_model(tiny64_config):
    return tiny64_config.build_model()


@pytest.fixture(scope="module")
def ragged_requests():
    rng = np.random.default_rng(7)
    lengths = (5, 12, 5, 9, 30, 12, 7, 5)
    return [rng.integers(0, 100, size=length) for length in lengths]


class TestRequestBatcher:
    def test_groups_by_length_and_respects_batch_size(self):
        batcher = RequestBatcher(max_batch_size=2, bucket_size=1)
        plan = batcher.plan([5, 9, 5, 5, 9, 3])
        assert plan == [(3, (5,)), (5, (0, 2)), (5, (3,)), (9, (1, 4))]

    def test_bucketing_pads_to_multiple(self):
        batcher = RequestBatcher(max_batch_size=8, bucket_size=8)
        plan = batcher.plan([5, 7, 9, 16])
        assert plan == [(8, (0, 1)), (16, (2, 3))]

    def test_bucketing_never_pads_past_max_length(self, fast_registry):
        # bucket_size 7 does not divide max_sequence_length 32: a length-29
        # request must be capped at 32, not bucketed to 35.
        batcher = RequestBatcher(max_batch_size=4, bucket_size=7)
        assert batcher.plan([29, 3], max_length=32) == [(7, (1,)), (32, (0,))]
        session = InferenceSession(
            SessionConfig(model_family="tiny", bucket_size=7), registry=fast_registry
        )
        (hidden,) = session.forward([np.arange(1, 30)])
        assert hidden.shape[0] == 29

    def test_no_mask_without_padding(self):
        batcher = RequestBatcher(max_batch_size=4)
        requests = [np.arange(1, 5), np.arange(2, 6)]
        (batch,) = list(batcher.iter_batches(requests))
        assert batch.mask is None
        assert np.array_equal(batch.tokens, np.stack(requests))

    def test_padding_and_mask(self):
        batcher = RequestBatcher(max_batch_size=4, bucket_size=4)
        requests = [np.array([1, 2]), np.array([3, 4, 5, 6])]
        (batch,) = list(batcher.iter_batches(requests))
        assert batch.tokens.shape == (2, 4)
        assert np.array_equal(batch.tokens[0], [1, 2, 0, 0])
        assert np.array_equal(batch.mask, [[1, 1, 0, 0], [1, 1, 1, 1]])

    def test_buffers_are_reused_across_batches(self):
        batcher = RequestBatcher(max_batch_size=4)
        requests = [np.arange(6), np.arange(6), np.arange(4)]
        # Warm-up pass grows the buffer; copy=False is the zero-allocation
        # hot path the session uses.
        list(batcher.iter_batches(requests, copy=False))
        first = [b.tokens.base for b in batcher.iter_batches(requests, copy=False)]
        second = [b.tokens.base for b in batcher.iter_batches(requests, copy=False)]
        assert first[0] is not None and all(base is first[0] for base in first + second)

    def test_default_batches_own_their_arrays(self):
        batcher = RequestBatcher(max_batch_size=1)
        requests = [np.full(5, 1), np.full(5, 2)]
        batches = list(batcher.iter_batches(requests))
        assert np.array_equal(batches[0].tokens[0], np.full(5, 1))
        assert np.array_equal(batches[1].tokens[0], np.full(5, 2))

    @pytest.mark.parametrize(
        "bad_request, match",
        [
            (np.array([]), "empty"),
            (np.zeros((2, 3), dtype=np.int64), "1-D"),
            (np.array([0.5, 1.5]), "integer"),
        ],
    )
    def test_rejects_malformed_requests(self, bad_request, match):
        batcher = RequestBatcher()
        with pytest.raises(ValueError, match=match):
            list(batcher.iter_batches([bad_request]))

    def test_rejects_over_length_requests(self):
        batcher = RequestBatcher()
        with pytest.raises(ValueError, match="maximum sequence length"):
            list(batcher.iter_batches([np.arange(10)], max_length=8))

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            RequestBatcher(max_batch_size=0)
        with pytest.raises(ValueError, match="bucket_size"):
            RequestBatcher(bucket_size=0)


#: Every BackendSpec scenario of the acceptance criterion.
PARITY_SPECS = {
    "exact": BackendSpec.exact(),
    "nn_lut_fp32": BackendSpec.nn_lut(precision="fp32"),
    "nn_lut_fp16": BackendSpec.nn_lut(precision="fp16"),
    "nn_lut_int32": BackendSpec.nn_lut(precision="int32"),
    "linear_lut": BackendSpec.linear_lut(),
    "ibert": BackendSpec.ibert(),
}


class TestBitwiseParity:
    """Micro-batched ragged serving == legacy per-call, bit for bit (fp64)."""

    @pytest.mark.parametrize("key", sorted(PARITY_SPECS))
    def test_forward_matches_per_call(
        self, key, tiny64_model, ragged_requests, fast_registry
    ):
        spec = PARITY_SPECS[key]
        session = InferenceSession.from_model(
            tiny64_model, spec=spec, registry=fast_registry, max_batch_size=3
        )
        batched = session.forward(ragged_requests)
        for i, request in enumerate(ragged_requests):
            per_call = tiny64_model.forward(request[None, :], backend=session.backend)
            assert np.array_equal(per_call[0], batched[i]), f"{key}: request {i}"

    @pytest.mark.parametrize("key", sorted(PARITY_SPECS))
    def test_pooled_matches_per_call(
        self, key, tiny64_model, ragged_requests, fast_registry
    ):
        spec = PARITY_SPECS[key]
        session = InferenceSession.from_model(
            tiny64_model, spec=spec, registry=fast_registry, max_batch_size=3
        )
        pooled = session.pooled(ragged_requests)
        for i, request in enumerate(ragged_requests):
            per_call = tiny64_model.pooled(request[None, :], backend=session.backend)
            assert np.array_equal(per_call[0], pooled[i]), f"{key}: request {i}"


class TestServing:
    def test_outputs_come_back_in_request_order(self, tiny64_model, fast_registry):
        session = InferenceSession.from_model(
            tiny64_model, registry=fast_registry, max_batch_size=2
        )
        requests = [np.full(length, length, dtype=np.int64) for length in (4, 9, 4, 6)]
        outputs = session.forward(requests)
        assert [o.shape[0] for o in outputs] == [4, 9, 4, 6]

    def test_empty_request_list(self, tiny64_model, fast_registry):
        session = InferenceSession.from_model(tiny64_model, registry=fast_registry)
        assert session.forward([]) == []
        assert session.pooled([]).shape == (0, tiny64_model.config.hidden_size)

    def test_padded_buckets_stay_close_to_per_call(self, tiny64_model, fast_registry):
        session = InferenceSession.from_model(
            tiny64_model, registry=fast_registry, max_batch_size=4, bucket_size=8
        )
        rng = np.random.default_rng(3)
        requests = [rng.integers(0, 100, size=length) for length in (5, 8, 6, 3)]
        batched = session.forward(requests)
        for i, request in enumerate(requests):
            per_call = tiny64_model.forward(request[None, :], backend=session.backend)
            # Padded keys receive a large-negative score, not -inf, so parity
            # is approximate here (exact softmax underflows them to zero).
            assert np.allclose(per_call[0], batched[i], atol=1e-8), f"request {i}"

    def test_classify_uses_fitted_head(self, tiny64_model, fast_registry, rng):
        session = InferenceSession.from_model(tiny64_model, registry=fast_registry)
        requests = [rng.integers(0, 100, size=length) for length in (6, 11, 6)]
        features = session.pooled(requests)
        labels = (features[:, 0] > np.median(features[:, 0])).astype(np.int64)
        head = ClassificationHead.fit(features, labels, num_classes=2, epochs=20)
        assert np.array_equal(session.classify(requests, head), head.predict(features))

    def test_classify_unwraps_finetuned_wrappers(self, tiny64_model, fast_registry, rng):
        # The finetuning flow's Finetuned* objects carry the real head in
        # `.head`; classify must score *these* requests through it, not call
        # the wrapper's backend-taking predict().
        session = InferenceSession.from_model(tiny64_model, registry=fast_registry)
        requests = [rng.integers(0, 100, size=length) for length in (6, 11)]
        features = session.pooled(requests)
        labels = np.array([0, 1])
        head = ClassificationHead.fit(features, labels, num_classes=2, epochs=20)

        class Wrapper:
            def __init__(self, head):
                self.head = head

            def predict(self, backend=None):  # pragma: no cover - must not run
                raise AssertionError("wrapper predict must not be called")

        assert np.array_equal(
            session.classify(requests, Wrapper(head)), head.predict(features)
        )

    def test_classify_rejects_non_classification_heads(
        self, tiny64_model, fast_registry
    ):
        session = InferenceSession.from_model(tiny64_model, registry=fast_registry)
        with pytest.raises(TypeError, match="ClassificationHead"):
            session.classify([np.arange(1, 5)], head=object())
        # A span head has .predict too but scores token features — it must be
        # rejected up front, not crash deep inside heads.py.
        from repro.transformer.heads import SpanHead

        span_head = SpanHead(weight=np.zeros(tiny64_model.config.hidden_size), bias=0.0)
        with pytest.raises(TypeError, match="ClassificationHead"):
            session.classify([np.arange(1, 5)], head=span_head)

    def test_forward_batch_passthrough(self, tiny64_model, fast_registry, rng):
        session = InferenceSession.from_model(tiny64_model, registry=fast_registry)
        tokens = rng.integers(0, 100, size=(2, 8))
        assert np.array_equal(
            session.forward_batch(tokens),
            tiny64_model.forward(tokens, backend=session.backend),
        )

    def test_session_builds_model_from_config(self, fast_registry):
        config = SessionConfig(model_family="tiny", seed=5)
        session = InferenceSession(config, registry=fast_registry)
        assert session.model.config.name == "tiny-test"
        twin = config.build_model()
        request = np.arange(1, 9)
        assert np.array_equal(
            session.forward([request])[0],
            twin.forward(request[None, :], backend=session.backend)[0],
        )


class TestSessionConfig:
    def test_round_trip(self):
        config = SessionConfig(
            model_family="mobilebert",
            seed=4,
            matmul_precision="int8",
            bucket_size=4,
            model_overrides={"num_layers": 2},
        )
        assert SessionConfig.from_dict(config.to_dict()) == config

    def test_rejects_unknown_family_and_size(self):
        with pytest.raises(ValueError, match="model_family"):
            SessionConfig(model_family="gpt")
        with pytest.raises(ValueError, match="model_size"):
            SessionConfig(model_size="xxl")

    def test_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="sharding"):
            SessionConfig.from_dict({"sharding": 2})

    def test_configs_are_hashable_values(self):
        a = SessionConfig(model_overrides={"num_layers": 2})
        b = SessionConfig(model_overrides={"num_layers": 2})
        assert a == b and hash(a) == hash(b)
        assert len({a, b, SessionConfig()}) == 2

    def test_container_overrides_stay_hashable(self):
        # Regression: a list-valued override constructed fine and then
        # hash() raised TypeError (unhashable 'list') — breaking the
        # "hashable like its sibling BackendSpec" contract.
        a = SessionConfig(model_overrides={"x": [1, 2], "y": {"k": [3]}})
        b = SessionConfig(model_overrides={"x": (1, 2), "y": {"k": (3,)}})
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_container_overrides_round_trip(self):
        config = SessionConfig(
            model_family="tiny", model_overrides={"x": [1, 2], "y": {"k": [3]}}
        )
        payload = config.to_dict()
        assert payload["model_overrides"] == {"x": [1, 2], "y": [["k", [3]]]}
        assert SessionConfig.from_dict(payload) == config

    def test_unhashable_override_rejected_with_clear_error(self):
        class Opaque:
            __hash__ = None  # type: ignore[assignment]

        with pytest.raises(TypeError, match=r"model_overrides\['x'\]"):
            SessionConfig(model_overrides={"x": Opaque()})

    def test_engine_settings_reach_the_model(self):
        config = SessionConfig(
            model_family="tiny", compute_dtype="float64", matmul_precision="int8"
        )
        model = config.build_model()
        assert model.config.compute_dtype == "float64"
        assert model.config.matmul_precision == "int8"

    def test_adopted_model_rejects_named_family_configs(self, tiny64_model, fast_registry):
        with pytest.raises(ValueError, match="custom"):
            InferenceSession(
                SessionConfig(model_family="roberta"),
                registry=fast_registry,
                model=tiny64_model,
            )
        # With no config at all, an honest custom config is synthesized.
        session = InferenceSession(registry=fast_registry, model=tiny64_model)
        assert session.config.model_family == "custom"
        assert session.config.compute_dtype == tiny64_model.config.compute_dtype

    def test_custom_config_engine_fields_must_match_model(
        self, tiny64_model, fast_registry
    ):
        # tiny64_model runs float64; a custom config claiming float32 would
        # log engine settings the session does not actually use.
        with pytest.raises(ValueError, match="compute_dtype"):
            InferenceSession(
                SessionConfig(model_family="custom", compute_dtype="float32"),
                registry=fast_registry,
                model=tiny64_model,
            )
        session = InferenceSession(
            SessionConfig(model_family="custom", compute_dtype="float64", max_batch_size=4),
            registry=fast_registry,
            model=tiny64_model,
        )
        assert session.config.max_batch_size == 4

    def test_from_model_config_is_marked_custom(self, tiny64_model, fast_registry):
        session = InferenceSession.from_model(tiny64_model, registry=fast_registry)
        assert session.config.model_family == "custom"
        # A custom config round-trips but refuses to rebuild a model — it
        # never described the adopted architecture.
        replayed = SessionConfig.from_dict(session.config.to_dict())
        with pytest.raises(ValueError, match="custom"):
            replayed.build_model()


class TestCalibration:
    def test_calibrate_swaps_tables_in(self, fast_registry):
        spec = BackendSpec.nn_lut().with_calibration("layernorm")
        session = InferenceSession(
            SessionConfig(model_family="tiny", compute_dtype="float64"),
            spec=spec,
            registry=fast_registry,
        )
        rng = np.random.default_rng(0)
        samples = [rng.integers(0, 100, size=length) for length in (8, 12, 8, 16)]
        calibrated = session.calibrate(samples)
        assert set(calibrated) == {"rsqrt"}
        assert calibrated["rsqrt"].metadata["calibrated"] is True
        assert session.lut_overrides["rsqrt"] is calibrated["rsqrt"]
        assert session.backend.name == "nn-lut-fp32+cal"
        # The recording pass must not leak into the serving backend.
        assert not session.backend.recorder.enabled
        # The calibrated session still serves.
        assert session.pooled(samples).shape == (4, session.model.config.hidden_size)

    def test_calibrate_is_invariant_to_bucketed_padding(self, fast_registry):
        # Recording always runs with exact-length batching: a padded-bucket
        # session must produce the same calibrated table as an unpadded one
        # (pad-token activations must never reach the recorder).
        rng = np.random.default_rng(2)
        samples = [rng.integers(0, 100, size=length) for length in (5, 11, 7, 13)]
        tables = []
        for bucket_size in (1, 8):
            session = InferenceSession(
                SessionConfig(model_family="tiny", bucket_size=bucket_size),
                spec=BackendSpec.nn_lut().with_calibration("layernorm"),
                registry=fast_registry,
            )
            tables.append(session.calibrate(samples)["rsqrt"])
        assert np.array_equal(tables[0].breakpoints, tables[1].breakpoints)
        assert np.array_equal(tables[0].slopes, tables[1].slopes)

    def test_calibration_queries_respect_input_scaling(self, fast_registry):
        # input_scaling=False serves raw variances; the calibrated table must
        # be fitted on that same distribution, not the S*var mapping.
        from repro.api import calibrate_primitive_luts
        from repro.transformer.nonlinear_backend import OperatorRecorder

        rng = np.random.default_rng(0)
        recorder = OperatorRecorder(enabled=True)
        recorder.record("layernorm", rng.normal(0.0, 0.01, size=(4, 16, 32)))
        scaled = calibrate_primitive_luts(
            recorder, fast_registry, ("layernorm",), input_scaling=True
        )
        raw = calibrate_primitive_luts(
            recorder, fast_registry, ("layernorm",), input_scaling=False
        )
        assert not np.array_equal(
            scaled["rsqrt"].breakpoints, raw["rsqrt"].breakpoints
        )

    def test_calibrate_defaults_to_all_nn_lut_operators(self, fast_registry):
        session = InferenceSession(
            SessionConfig(model_family="tiny"),
            spec=BackendSpec.nn_lut(replace=("gelu",)),
            registry=fast_registry,
        )
        rng = np.random.default_rng(1)
        calibrated = session.calibrate([rng.integers(0, 100, size=10)])
        assert set(calibrated) == {"gelu"}

    def test_calibrate_rejects_exact_spec(self, fast_registry):
        session = InferenceSession(
            SessionConfig(model_family="tiny"), registry=fast_registry
        )
        with pytest.raises(ValueError, match="nothing to calibrate"):
            session.calibrate([np.arange(1, 9)])

    def test_calibrate_rejects_non_nn_lut_operator(self, fast_registry):
        session = InferenceSession(
            SessionConfig(model_family="tiny"),
            spec=BackendSpec.linear_lut(),
            registry=fast_registry,
        )
        with pytest.raises(ValueError, match="NN-LUT"):
            session.calibrate([np.arange(1, 9)], operators=("gelu",))


class TestRecordingContextManager:
    def test_restores_state_on_exception(self):
        backend = build_backend(BackendSpec.exact())
        with pytest.raises(RuntimeError):
            with backend.recording():
                assert backend.recorder.enabled
                raise RuntimeError("calibration failed midway")
        assert not backend.recorder.enabled

    def test_restores_prior_enabled_state(self):
        backend = build_backend(BackendSpec.exact())
        backend.recorder.enabled = True
        with backend.recording(enabled=False):
            assert not backend.recorder.enabled
        assert backend.recorder.enabled

    def test_records_inside_scope_only(self, rng):
        backend = build_backend(BackendSpec.exact())
        backend.apply_gelu(rng.normal(size=(2, 3)))
        assert backend.recorder.gelu_inputs == []
        with backend.recording() as recorder:
            backend.apply_gelu(rng.normal(size=(2, 3)))
        assert len(recorder.gelu_inputs) == 1
        backend.apply_gelu(rng.normal(size=(2, 3)))
        assert len(recorder.gelu_inputs) == 1


class TestForwardPacked:
    """The packed-row serving surface the shm response rings write through."""

    def test_matches_forward_bitwise(self, tiny64_model, ragged_requests, fast_registry):
        session = InferenceSession.from_model(
            tiny64_model, spec=BackendSpec.nn_lut(), registry=fast_registry,
            max_batch_size=3,
        )
        per_request = session.forward(ragged_requests)
        lengths, flat = session.forward_packed(ragged_requests)
        assert lengths == [r.size for r in ragged_requests]
        assert flat.shape == (sum(lengths), tiny64_model.config.hidden_size)
        assert flat.dtype == np.dtype(tiny64_model.config.compute_dtype)
        offset = 0
        for i, length in enumerate(lengths):
            assert np.array_equal(flat[offset : offset + length], per_request[i]), i
            offset += length

    def test_writes_into_caller_buffer(self, tiny64_model, ragged_requests, fast_registry):
        # The point of the method: a shard worker hands the response ring's
        # own memory as ``out`` and the rows land there directly.
        session = InferenceSession.from_model(
            tiny64_model, registry=fast_registry, max_batch_size=3
        )
        total = sum(r.size for r in ragged_requests)
        out = np.empty(
            (total, tiny64_model.config.hidden_size),
            dtype=np.dtype(tiny64_model.config.compute_dtype),
        )
        lengths, flat = session.forward_packed(ragged_requests, out=out)
        assert flat is out
        _, reference = session.forward_packed(ragged_requests)
        assert np.array_equal(out, reference)

    def test_rejects_mismatched_out(self, tiny64_model, ragged_requests, fast_registry):
        session = InferenceSession.from_model(
            tiny64_model, registry=fast_registry, max_batch_size=3
        )
        with pytest.raises(ValueError, match="shape"):
            session.forward_packed(ragged_requests, out=np.empty((1, 1)))

    def test_empty_request_list(self, tiny64_model, fast_registry):
        session = InferenceSession.from_model(tiny64_model, registry=fast_registry)
        lengths, flat = session.forward_packed([])
        assert lengths == [] and flat.shape == (0, tiny64_model.config.hidden_size)
