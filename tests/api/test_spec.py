"""BackendSpec serialization, validation and legacy-constructor equivalence."""

import json

import numpy as np
import pytest

from repro.api import BackendSpec, OperatorSpec, as_backend, build_backend
from repro.transformer.nonlinear_backend import (
    NonlinearBackend,
    exact_backend,
    ibert_backend,
    linear_lut_backend,
    nn_lut_backend,
)


class TestOperatorSpecValidation:
    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            OperatorSpec(method="polynomial")

    def test_rejects_unknown_precision(self):
        with pytest.raises(ValueError, match="precision"):
            OperatorSpec(precision="int4")

    def test_rejects_tiny_tables(self):
        with pytest.raises(ValueError, match="num_entries"):
            OperatorSpec(num_entries=1)

    def test_rejects_calibration_on_non_nn_lut(self):
        with pytest.raises(ValueError, match="calibration"):
            OperatorSpec(method="linear_lut", calibration=True)


SPECS = {
    "exact": BackendSpec.exact(),
    "nn_lut_fp32": BackendSpec.nn_lut(),
    "nn_lut_fp16": BackendSpec.nn_lut(precision="fp16"),
    "nn_lut_int32_cal": BackendSpec.nn_lut(precision="int32").with_calibration("layernorm"),
    "nn_lut_partial": BackendSpec.nn_lut(replace=("layernorm",), input_scaling=False),
    "linear_lut_8": BackendSpec.linear_lut(num_entries=8),
    "ibert": BackendSpec.ibert(replace=("gelu", "softmax")),
    "named": BackendSpec.nn_lut(name="prod-serving-v1"),
    "mixed": BackendSpec(
        gelu=OperatorSpec(method="nn_lut"),
        softmax=OperatorSpec(method="ibert"),
        layernorm=OperatorSpec(),
    ),
}


class TestSerialization:
    @pytest.mark.parametrize("key", sorted(SPECS))
    def test_round_trip_equality(self, key):
        spec = SPECS[key]
        payload = spec.to_dict()
        assert BackendSpec.from_dict(payload) == spec

    @pytest.mark.parametrize("key", sorted(SPECS))
    def test_payload_is_json_compatible(self, key):
        spec = SPECS[key]
        assert BackendSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_rejects_partial_operators_section(self):
        # A stripped payload must not silently downgrade the missing
        # operators to the exact baseline.
        with pytest.raises(ValueError, match="missing"):
            BackendSpec.from_dict({"operators": {"gelu": {"method": "nn_lut"}}})
        with pytest.raises(ValueError, match="missing"):
            BackendSpec.from_dict({"operators": {}})

    def test_rejects_unknown_operator(self):
        with pytest.raises(ValueError, match="attention"):
            BackendSpec.from_dict({"operators": {"attention": {"method": "nn_lut"}}})

    def test_rejects_unknown_operator_field(self):
        with pytest.raises(ValueError, match="bitwidth"):
            BackendSpec.from_dict({"operators": {"gelu": {"bitwidth": 8}}})

    def test_rejects_non_mapping_operator_payload(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            BackendSpec.from_dict({"operators": {"gelu": "nn_lut"}})

    def test_rejects_unknown_top_level_field(self):
        with pytest.raises(ValueError, match="model"):
            BackendSpec.from_dict({"model": "roberta"})

    def test_rejects_unknown_precision(self):
        with pytest.raises(ValueError, match="precision"):
            BackendSpec.from_dict({"operators": {"gelu": {"precision": "int4"}}})

    def test_rejects_future_version(self):
        with pytest.raises(ValueError, match="version"):
            BackendSpec.from_dict({"version": 99})

    def test_rejects_mistyped_field_values(self):
        # Strings from YAML/env config sources must not be coerced — "false"
        # would otherwise become calibration=True.
        with pytest.raises(ValueError, match="calibration"):
            BackendSpec.from_dict({"operators": {"gelu": {"calibration": "false"}}})
        with pytest.raises(ValueError, match="num_entries"):
            BackendSpec.from_dict({"operators": {"gelu": {"num_entries": 16.5}}})
        mangled = BackendSpec.exact().to_dict()
        mangled["input_scaling"] = "yes"
        with pytest.raises(ValueError, match="input_scaling"):
            BackendSpec.from_dict(mangled)

    def test_rejects_payload_without_operators_section(self):
        # A truncated config must not silently deserialise as the baseline.
        with pytest.raises(ValueError, match="operators"):
            BackendSpec.from_dict({"version": 1, "input_scaling": True})

    def test_constructor_rejects_unknown_replace(self):
        with pytest.raises(ValueError, match="attention"):
            BackendSpec.nn_lut(replace=("gelu", "attention"))


class TestIntrospection:
    def test_replaced_and_calibrated(self):
        spec = BackendSpec.nn_lut(replace=("gelu", "layernorm")).with_calibration("layernorm")
        assert spec.replaced() == ("gelu", "layernorm")
        assert spec.calibrated() == ("layernorm",)

    def test_with_calibration_defaults_to_replaced(self):
        spec = BackendSpec.nn_lut(replace=("layernorm",)).with_calibration()
        assert spec.calibrated() == ("layernorm",)

    def test_with_calibration_rejects_specs_with_nothing_to_flag(self):
        with pytest.raises(ValueError, match="nothing to flag"):
            BackendSpec.exact().with_calibration()

    def test_specs_are_hashable(self):
        assert len({BackendSpec.exact(), BackendSpec.exact(), BackendSpec.nn_lut()}) == 2


class TestFromMethod:
    def test_dispatches_to_each_constructor(self):
        assert BackendSpec.from_method("exact") == BackendSpec.exact()
        assert BackendSpec.from_method("nn_lut", precision="fp16") == BackendSpec.nn_lut(
            precision="fp16"
        )
        assert BackendSpec.from_method("ibert", replace=("gelu",)) == BackendSpec.ibert(
            replace=("gelu",)
        )

    def test_rejects_arguments_the_method_does_not_take(self):
        # Silently dropping these would let a sweep fabricate distinct-looking
        # rows that are actually the same backend.
        with pytest.raises(ValueError, match="does not accept"):
            BackendSpec.from_method("ibert", precision="fp16")
        with pytest.raises(ValueError, match="does not accept"):
            BackendSpec.from_method("exact", replace=("gelu",))

    def test_validation_errors_from_accepted_arguments_propagate(self):
        # A bad *value* for a valid kwarg must surface as itself, not be
        # misreported as an unknown-argument error.
        with pytest.raises(TypeError):
            BackendSpec.from_method("nn_lut", num_entries="16")
        with pytest.raises(ValueError, match="precision"):
            BackendSpec.from_method("nn_lut", precision="int4")

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            BackendSpec.from_method("polynomial")


def _op_inputs(rng):
    return (
        rng.normal(size=(3, 17)),
        rng.normal(size=(2, 4, 9)),
        rng.normal(size=(3, 16)),
    )


def _assert_backends_equivalent(built, legacy, rng):
    x_gelu, x_softmax, x_layernorm = _op_inputs(rng)
    gamma = rng.normal(1.0, 0.05, size=x_layernorm.shape[-1])
    beta = rng.normal(0.0, 0.05, size=x_layernorm.shape[-1])
    assert np.array_equal(built.apply_gelu(x_gelu), legacy.apply_gelu(x_gelu))
    assert np.array_equal(built.apply_softmax(x_softmax), legacy.apply_softmax(x_softmax))
    assert np.array_equal(
        built.apply_layernorm(x_layernorm, gamma=gamma, beta=beta),
        legacy.apply_layernorm(x_layernorm, gamma=gamma, beta=beta),
    )
    assert built.name == legacy.name


class TestBuildBackendLegacyEquivalence:
    """build_backend(spec) reproduces each legacy constructor bit for bit."""

    def test_exact(self, rng):
        with pytest.warns(DeprecationWarning):
            legacy = exact_backend()
        _assert_backends_equivalent(build_backend(BackendSpec.exact()), legacy, rng)

    @pytest.mark.parametrize("precision", ["fp32", "fp16", "int32"])
    def test_nn_lut_precisions(self, fast_registry, rng, precision):
        with pytest.warns(DeprecationWarning):
            legacy = nn_lut_backend(registry=fast_registry, precision=precision)
        built = build_backend(BackendSpec.nn_lut(precision=precision), registry=fast_registry)
        _assert_backends_equivalent(built, legacy, rng)

    def test_nn_lut_partial_replace(self, fast_registry, rng):
        with pytest.warns(DeprecationWarning):
            legacy = nn_lut_backend(registry=fast_registry, replace=("layernorm",))
        built = build_backend(
            BackendSpec.nn_lut(replace=("layernorm",)), registry=fast_registry
        )
        _assert_backends_equivalent(built, legacy, rng)

    def test_nn_lut_with_overrides(self, fast_registry, rng):
        overrides = {"rsqrt": fast_registry.lut("rsqrt", num_entries=8)}
        with pytest.warns(DeprecationWarning):
            legacy = nn_lut_backend(registry=fast_registry, lut_overrides=overrides)
        built = build_backend(
            BackendSpec.nn_lut().with_calibration("layernorm"),
            registry=fast_registry,
            lut_overrides=overrides,
        )
        _assert_backends_equivalent(built, legacy, rng)
        assert built.name == "nn-lut-fp32+cal"

    def test_linear_lut(self, rng):
        with pytest.warns(DeprecationWarning):
            legacy = linear_lut_backend()
        _assert_backends_equivalent(build_backend(BackendSpec.linear_lut()), legacy, rng)

    def test_ibert(self, rng):
        with pytest.warns(DeprecationWarning):
            legacy = ibert_backend()
        _assert_backends_equivalent(build_backend(BackendSpec.ibert()), legacy, rng)


class TestBuildBackend:
    def test_mixed_methods(self, fast_registry, rng):
        backend = build_backend(SPECS["mixed"], registry=fast_registry)
        assert backend.name == "mixed"
        x_gelu, x_softmax, x_layernorm = _op_inputs(rng)
        assert backend.apply_gelu(x_gelu).shape == x_gelu.shape
        probabilities = backend.apply_softmax(x_softmax)
        assert np.allclose(np.sum(probabilities, axis=-1), 1.0, atol=0.05)
        assert backend.apply_layernorm(x_layernorm).shape == x_layernorm.shape

    def test_spec_embedded_in_metadata(self, fast_registry):
        spec = BackendSpec.nn_lut(precision="int32")
        backend = build_backend(spec, registry=fast_registry)
        assert BackendSpec.from_dict(backend.metadata["spec"]) == spec
        assert backend.metadata["replaced"] == ("gelu", "softmax", "layernorm")

    def test_explicit_name_wins(self, fast_registry):
        backend = build_backend(SPECS["named"], registry=fast_registry)
        assert backend.name == "prod-serving-v1"

    def test_rejects_unknown_override_primitive(self, fast_registry):
        with pytest.raises(ValueError, match="tanh"):
            build_backend(
                BackendSpec.nn_lut(),
                registry=fast_registry,
                lut_overrides={"tanh": fast_registry.lut("gelu")},
            )

    def test_rejects_non_spec(self):
        with pytest.raises(TypeError, match="BackendSpec"):
            build_backend({"method": "exact"})


class TestAsBackend:
    def test_none_is_exact(self):
        assert as_backend(None).name == "exact"

    def test_spec_is_built(self, fast_registry):
        assert as_backend(BackendSpec.ibert(), registry=fast_registry).name == "i-bert"

    def test_backend_passes_through(self):
        backend = as_backend(None)
        assert as_backend(backend) is backend

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_backend("nn_lut")


class TestDeprecatedShims:
    """The legacy constructors still work but say where to go."""

    def test_all_four_warn(self, fast_registry):
        for shim in (
            exact_backend,
            lambda: nn_lut_backend(registry=fast_registry),
            linear_lut_backend,
            ibert_backend,
        ):
            with pytest.warns(DeprecationWarning, match="repro.api"):
                backend = shim()
            assert isinstance(backend, NonlinearBackend)
