"""Chaos suite: seeded fault schedules against the serving resilience stack.

Every test arms a deterministic :class:`~repro.api.faults.FaultPlan` at the
serving seams (worker request handling, parent-side ring decode, pool spawn,
session forward) and asserts the acceptance criteria of the resilience work:

* **zero lost futures** — every submitted request resolves, either with a
  result or a typed error; nothing hangs;
* **bitwise-correct results** — responses that succeed under faults are
  float64-bitwise-equal to the single-session oracle (the retry-idempotency
  contract: inference is pure, so re-execution cannot change a result);
* the breaker demonstrably ejects a flaky replica and re-admits it;
* fault injection disabled means no injector is active at all (the hooks
  are a single ``is not None`` check on the hot paths).

The process-spawning tests mirror ``tests/api/test_sharding.py``: a tiny
float64 model, the shared ``fast_registry``, and real worker processes.
"""

import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import (
    BackendSpec,
    CircuitBreakerConfig,
    DeadlineExceededError,
    FaultPlan,
    InferenceSession,
    InjectedFaultError,
    RetryPolicy,
    ServingQueue,
    SessionConfig,
    SessionPool,
    ShardedPool,
)
from repro.api import faults

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))
import traces  # noqa: E402  (benchmarks/ is not a package)


RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.01, backoff_max_s=0.05)


@pytest.fixture(scope="module")
def chaos_config():
    return SessionConfig(
        model_family="tiny", compute_dtype="float64", max_batch_size=3
    )


@pytest.fixture(scope="module")
def oracle(chaos_config, fast_registry):
    """Single-session float64 serving — the bitwise reference."""
    return InferenceSession(
        config=chaos_config, spec=BackendSpec.nn_lut(), registry=fast_registry
    )


@pytest.fixture(scope="module")
def chaos_trace():
    return traces.generate_trace(
        num_requests=12, duration_s=0.1, seed=16, max_length=16, vocab_size=100
    )


def _assert_bitwise(result, trace, oracle):
    """Successful replay responses must match the oracle bit for bit."""
    expected = oracle.forward(list(trace.requests))
    for outcome, got in zip(result.outcomes, result.results()):
        if outcome.ok:
            assert np.array_equal(got, expected[outcome.index]), (
                f"request {outcome.index} diverged from the oracle"
            )


class TestInjectorMechanics:
    def test_disabled_by_default(self):
        assert faults.active() is None
        assert faults.active_plan() is None

    def test_install_uninstall_roundtrip(self):
        injector = faults.install(FaultPlan(seed=3))
        try:
            assert faults.active() is injector
            assert faults.active_plan() is injector.plan
        finally:
            faults.uninstall()
        assert faults.active() is None

    def test_inject_context_manager_restores(self):
        with faults.inject(FaultPlan()) as injector:
            assert faults.active() is injector
        assert faults.active() is None

    def test_plan_validation(self):
        with pytest.raises(ValueError, match="worker_crash_at"):
            FaultPlan(worker_crash_at=0)
        with pytest.raises(ValueError, match="worker_stall_s"):
            FaultPlan(worker_stall_s=-1.0)
        with pytest.raises(ValueError, match="session_error_count"):
            FaultPlan(session_error_at=1, session_error_count=0)

    def test_counters_are_deterministic(self):
        injector = faults.FaultInjector(FaultPlan(), worker_index=1)
        for op in ("forward", "pooled", "close", "forward"):
            injector.on_worker_request(op)
        # "close" is not a serving op and must not advance the schedule.
        assert injector.counts()["worker_request"] == 3

    def test_session_error_window(self):
        plan = FaultPlan(session_error_at=2, session_error_count=2)
        injector = faults.FaultInjector(plan)
        injector.on_session_forward()  # call 1: before the window
        for _ in range(2):  # calls 2 and 3: inside it
            with pytest.raises(InjectedFaultError):
                injector.on_session_forward()
        injector.on_session_forward()  # call 4: past it

    def test_spawn_window(self):
        injector = faults.FaultInjector(FaultPlan(spawn_fail_at=1))
        with pytest.raises(InjectedFaultError):
            injector.on_spawn()
        injector.on_spawn()  # recovered


class TestBreakerAndRetryInProcess:
    """Retry + breaker semantics on a threaded pool (no process spawns)."""

    class _Flaky:
        """Session wrapper that times out K consecutive forwards, then heals."""

        def __init__(self, session, failures):
            self._session = session
            self._failures = failures
            self.calls = 0

        def forward(self, requests):
            self.calls += 1
            if self._failures > 0:
                self._failures -= 1
                raise TimeoutError("injected: replica wedged")
            return self._session.forward(requests)

        def pooled(self, requests):
            return self._session.pooled(requests)

    def _pool(self, chaos_config, fast_registry, num_replicas=2):
        return SessionPool(
            chaos_config, spec=BackendSpec.nn_lut(), registry=fast_registry,
            num_replicas=num_replicas,
        )

    def test_retry_reroutes_to_survivor_bitwise(
        self, chaos_config, fast_registry, oracle
    ):
        pool = self._pool(chaos_config, fast_registry)
        flaky = self._Flaky(pool.sessions[0], failures=2)
        pool.sessions[0] = flaky
        rng = np.random.default_rng(5)
        requests = [rng.integers(0, 100, size=n) for n in (6, 11, 4, 9)]
        queue = ServingQueue(pool, max_wait_ms=1.0, retry=RETRY)
        try:
            served = queue.serve(requests, timeout=60)
            stats = queue.stats()
        finally:
            queue.close()
        expected = oracle.forward(requests)
        for i, (a, b) in enumerate(zip(served, expected)):
            assert np.array_equal(a, b), f"request {i}"
        assert stats.failed == 0
        assert stats.retry_attempts >= 1
        assert stats.retried_requests >= 1

    def test_retry_budget_exhausts_to_fail_fast(
        self, chaos_config, fast_registry
    ):
        pool = self._pool(chaos_config, fast_registry, num_replicas=1)
        pool.sessions[0] = self._Flaky(pool.sessions[0], failures=10_000)
        policy = RetryPolicy(
            max_attempts=2, backoff_base_s=0.001, backoff_max_s=0.01,
            retry_budget=2,
        )
        queue = ServingQueue(pool, max_wait_ms=0.0, retry=policy)
        try:
            futures = [
                queue.submit(np.arange(4, dtype=np.int64)) for _ in range(4)
            ]
            failures = 0
            for future in futures:
                with pytest.raises(TimeoutError):
                    future.result(timeout=60)
                failures += 1
            stats = queue.stats()
        finally:
            queue.close()
        assert failures == 4  # zero lost futures: every one resolved
        assert stats.retried_requests <= policy.retry_budget

    def test_non_retryable_error_fails_fast_even_with_retry_on(
        self, chaos_config, fast_registry
    ):
        # An exception from the forward itself (not the replica/channel)
        # would fail identically everywhere; retrying would only repeat it.
        pool = self._pool(chaos_config, fast_registry)

        def exploding_forward(requests):
            raise RuntimeError("boom")

        pool.sessions[0].forward = exploding_forward  # type: ignore[method-assign]
        pool.sessions[1].forward = exploding_forward  # type: ignore[method-assign]
        queue = ServingQueue(pool, max_wait_ms=0.0, retry=RETRY)
        try:
            future = queue.submit(np.arange(5, dtype=np.int64))
            with pytest.raises(RuntimeError, match="boom"):
                future.result(timeout=30)
            assert queue.stats().retry_attempts == 0
        finally:
            queue.close()

    def test_breaker_ejects_and_readmits(self, chaos_config, fast_registry):
        # The acceptance scenario: a flaky replica trips its breaker (no new
        # traffic), then wins traffic back through a half-open probe once
        # healthy — observable in the transition counters and final state.
        pool = self._pool(chaos_config, fast_registry)
        flaky = self._Flaky(pool.sessions[0], failures=2)
        pool.sessions[0] = flaky
        breaker = CircuitBreakerConfig(failure_threshold=2, cooldown_s=0.15)
        queue = ServingQueue(
            pool, max_wait_ms=0.0, retry=RETRY, breaker=breaker
        )
        try:
            tokens = np.arange(6, dtype=np.int64)
            # Enough sequential traffic to hit the flaky replica twice
            # (deterministic round-robin alternates members).
            for _ in range(4):
                assert queue.serve_one(tokens, timeout=60).shape[0] == 6
            deadline = time.monotonic() + 30
            while queue.stats().breaker_opens < 1:
                assert time.monotonic() < deadline, "breaker never opened"
                queue.serve_one(tokens, timeout=60)
            # Cooldown, then keep serving until the half-open probe lands on
            # the (now healed) replica and closes the breaker.
            while queue.stats().breaker_closes < 1:
                assert time.monotonic() < deadline, "breaker never re-closed"
                queue.serve_one(tokens, timeout=60)
                time.sleep(0.02)
            stats = queue.stats()
        finally:
            queue.close()
        assert stats.breaker_opens >= 1
        assert stats.breaker_closes >= 1
        assert all(r.breaker_state == "closed" for r in stats.replicas)
        # The healed replica served again after re-admission.
        assert flaky.calls > 2

    def test_session_forward_fault_hook(self, chaos_config, fast_registry):
        # on_session_forward fires inside InferenceSession.forward itself —
        # the in-process seam the sharded workers share.  The injector is
        # armed after construction, so the pool's warmup forwards never
        # tick the schedule: call 1 serves, call 2 hits the window.
        pool = self._pool(chaos_config, fast_registry)
        with faults.inject(FaultPlan(session_error_at=2)):
            pool.sessions[0].forward([np.arange(4, dtype=np.int64)])
            with pytest.raises(InjectedFaultError):
                pool.sessions[1].forward([np.arange(4, dtype=np.int64)])


def _close_queue_and_pool(queue, pool):
    queue.close()
    pool.close()


class TestChaosSharded:
    """Seeded fault schedules against real worker processes."""

    def _pool(self, chaos_config, fast_registry, **kwargs):
        kwargs.setdefault("num_replicas", 2)
        return ShardedPool(
            chaos_config, spec=BackendSpec.nn_lut(), registry=fast_registry,
            **kwargs,
        )

    def test_worker_crash_mid_trace_recovers_bitwise(
        self, chaos_config, fast_registry, oracle, chaos_trace
    ):
        # Worker 0 exits hard on its 2nd request; retries re-route the
        # batch to the survivor and the whole trace still completes with
        # bitwise-correct responses.
        plan = FaultPlan(worker_crash_at=2, crash_worker_index=0)
        with faults.inject(plan):
            pool = self._pool(chaos_config, fast_registry)
        try:
            queue = ServingQueue(pool, max_wait_ms=1.0, retry=RETRY)
            try:
                result = traces.replay(
                    queue, chaos_trace, result_timeout_s=120.0
                )
                stats = queue.stats()
            finally:
                queue.close()
        finally:
            pool.close()
        assert len(result.outcomes) == chaos_trace.config.num_requests
        assert result.failed == 0, [
            (o.index, o.error) for o in result.outcomes if not o.ok
        ]
        _assert_bitwise(result, chaos_trace, oracle)
        assert stats.retry_attempts >= 1
        assert stats.replicas_retired >= 1
        assert stats.failed == 0

    def test_corrupted_ring_frame_degrades_and_retries(
        self, chaos_config, fast_registry, oracle, chaos_trace
    ):
        # The parent-side injector flips one byte in the first ring
        # response: decode must reject the frame (typed integrity error),
        # the channel must degrade to the pipe, and the retry must still
        # serve the batch bitwise-correctly.
        plan = FaultPlan(corrupt_response_at=1)
        with faults.inject(plan):
            pool = self._pool(
                chaos_config, fast_registry, transport="shm_ring"
            )
            try:
                queue = ServingQueue(pool, max_wait_ms=1.0, retry=RETRY)
                try:
                    result = traces.replay(
                        queue, chaos_trace, result_timeout_s=120.0
                    )
                    stats = queue.stats()
                finally:
                    queue.close()
                degraded = [
                    client.transport.degraded for client in pool.sessions
                ]
                transport_stats = [
                    dict(client.transport.stats) for client in pool.sessions
                ]
            finally:
                pool.close()
        assert result.failed == 0, [
            (o.index, o.error) for o in result.outcomes if not o.ok
        ]
        _assert_bitwise(result, chaos_trace, oracle)
        assert stats.integrity_failures >= 1
        assert stats.retry_attempts >= 1
        assert stats.failed == 0
        assert any(degraded), "no channel recorded the corruption"
        assert sum(s["integrity_failures"] for s in transport_stats) >= 1
        # The degraded channel kept serving — over the pipe.
        victim = transport_stats[degraded.index(True)]
        assert victim["pipe_responses"] >= 1

    def test_stalled_worker_times_out_and_survivor_serves(
        self, chaos_config, fast_registry, oracle
    ):
        # Worker 0 wedges for far longer than the request timeout on its
        # 1st request: the client poisons it, the batch re-routes.
        plan = FaultPlan(
            worker_stall_at=1, stall_worker_index=0, worker_stall_s=30.0
        )
        with faults.inject(plan):
            pool = self._pool(
                chaos_config, fast_registry, request_timeout_s=1.0
            )
        rng = np.random.default_rng(9)
        requests = [rng.integers(0, 100, size=n) for n in (5, 8, 11, 4)]
        try:
            queue = ServingQueue(pool, max_wait_ms=1.0, retry=RETRY)
            try:
                served = queue.serve(requests, timeout=120)
                stats = queue.stats()
            finally:
                queue.close()
        finally:
            pool.close()
        expected = oracle.forward(requests)
        for i, (a, b) in enumerate(zip(served, expected)):
            assert np.array_equal(a, b), f"request {i}"
        assert stats.failed == 0
        assert stats.retry_attempts >= 1
        assert stats.replicas_retired >= 1

    def test_spawn_failure_is_contained(
        self, chaos_config, fast_registry, oracle
    ):
        # A dead replica's replacement spawn fails (injected in the
        # parent): replacement is best-effort, so the survivor must keep
        # serving as a fleet of one.
        pool = self._pool(chaos_config, fast_registry)
        rng = np.random.default_rng(11)
        requests = [rng.integers(0, 100, size=n) for n in (6, 9, 5, 12)]
        try:
            queue = ServingQueue(
                pool, max_wait_ms=1.0, retry=RETRY,
                replace_dead_replicas=True,
            )
            try:
                with faults.inject(FaultPlan(spawn_fail_at=1)):
                    pool.sessions[1].process.kill()
                    pool.sessions[1].process.join(10)
                    served = queue.serve(requests, timeout=120)
                    # Retirement + the (failing) replacement spawn run on
                    # the dying worker's thread; wait for both to land.
                    deadline = time.monotonic() + 30
                    injector = faults.active()
                    while (
                        queue.stats().replicas_retired < 1
                        or injector.counts().get("spawn", 0) < 1
                    ):
                        assert time.monotonic() < deadline, (
                            "replacement spawn was never attempted"
                        )
                        time.sleep(0.01)
                    stats = queue.stats()
                    spawn_count = injector.counts().get("spawn", 0)
            finally:
                queue.close()
        finally:
            pool.close()
        expected = oracle.forward(requests)
        for i, (a, b) in enumerate(zip(served, expected)):
            assert np.array_equal(a, b), f"request {i}"
        assert stats.replicas_retired >= 1
        assert stats.replicas_added == 0  # the replacement never made it
        assert spawn_count >= 1  # ... because the injected spawn fault fired
        assert stats.live_replicas == 1

    def test_deadline_expiring_in_flight_is_skipped_by_the_worker(
        self, chaos_config, fast_registry
    ):
        # The stall is short of the request timeout but far past the
        # request's deadline: the deadline ships with the batch, the worker
        # skips the expired request instead of wasting a forward, and the
        # future fails typed.
        plan = FaultPlan(worker_stall_at=1, worker_stall_s=0.6)
        with faults.inject(plan):
            pool = self._pool(chaos_config, fast_registry, num_replicas=1)
        try:
            queue = ServingQueue(pool, max_wait_ms=0.0)
            try:
                future = queue.submit(
                    np.arange(6, dtype=np.int64), deadline_ms=150.0
                )
                with pytest.raises(DeadlineExceededError, match="in flight"):
                    future.result(timeout=60)
                stats = queue.stats()
                # The channel is still healthy: later traffic serves fine.
                assert queue.serve_one(
                    np.arange(4, dtype=np.int64), timeout=60
                ).shape[0] == 4
            finally:
                queue.close()
        finally:
            pool.close()
        assert stats.expired_in_flight >= 1
        assert stats.expired >= 1

    def test_deadline_free_traffic_uses_the_plain_forward_op(
        self, chaos_config, fast_registry, oracle
    ):
        # No deadlines anywhere -> the deadline op never ships (the hot
        # path is unchanged) and results stay bitwise-correct.
        pool = self._pool(chaos_config, fast_registry, num_replicas=1)
        rng = np.random.default_rng(13)
        requests = [rng.integers(0, 100, size=n) for n in (7, 3, 10)]
        try:
            queue = ServingQueue(pool, max_wait_ms=1.0)
            try:
                served = queue.serve(requests, timeout=60)
            finally:
                queue.close()
        finally:
            pool.close()
        expected = oracle.forward(requests)
        for i, (a, b) in enumerate(zip(served, expected)):
            assert np.array_equal(a, b), f"request {i}"

    def test_mixed_deadlines_pack_correctly(
        self, chaos_config, fast_registry, oracle
    ):
        # A batch mixing generous-deadline and no-deadline requests rides
        # the forward_deadline op; every request must come back full-size
        # and bitwise-correct (the packed response path with no skips).
        pool = self._pool(chaos_config, fast_registry, num_replicas=1)
        rng = np.random.default_rng(17)
        requests = [rng.integers(0, 100, size=n) for n in (5, 5, 5)]
        try:
            queue = ServingQueue(pool, max_wait_ms=20.0)
            try:
                futures = [
                    queue.submit(
                        tokens,
                        deadline_ms=(60_000.0 if i % 2 == 0 else None),
                    )
                    for i, tokens in enumerate(requests)
                ]
                served = [f.result(timeout=60) for f in futures]
            finally:
                queue.close()
        finally:
            pool.close()
        expected = oracle.forward(requests)
        for i, (a, b) in enumerate(zip(served, expected)):
            assert np.array_equal(a, b), f"request {i}"
