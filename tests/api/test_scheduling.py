"""The scheduling package: routing, membership, autoscaling, trace replay.

PR 9's decomposition gates.  The parity-critical contract: the default
``DeterministicRouter`` must keep queued serving bitwise-equal to
single-session serving under float64 (the pre-refactor guarantee), and
``LeastLoadedRouter`` — whose *placement* is timing-dependent — must keep
the *results* bitwise-identical too, because replica identity never
changes a float-engine forward.  The membership gates: retiring the
replica that is currently serving a batch lets the in-flight work finish
on it (and routes nothing new there), hot-adds join mid-traffic, a dead
replica is retired (and optionally replaced) instead of poisoning the
queue, and a trace-replay burst with churn mid-run loses no futures and
double-serves none.
"""

import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import (
    AutoscaleDecision,
    Autoscaler,
    AutoscalerConfig,
    BackendSpec,
    DeterministicRouter,
    InferenceSession,
    LeastLoadedRouter,
    ReplicaStats,
    ServingQueue,
    ServingStats,
    SessionConfig,
    SessionPool,
    ShardedPool,
    create_router,
)
from repro.api.scheduling import AdmissionController, BatchFormer, Pending, ServingFuture
from repro.api.scheduling.admission import QueueFullError
from repro.api.scheduling.stats import StatsBoard

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))
import traces  # noqa: E402  (benchmarks/ is not a package)


@pytest.fixture(scope="module")
def pool64(fast_registry):
    config = SessionConfig(
        model_family="tiny", compute_dtype="float64", max_batch_size=3
    )
    return SessionPool(
        config, spec=BackendSpec.nn_lut(), registry=fast_registry, num_replicas=2
    )


@pytest.fixture(scope="module")
def single64(pool64, fast_registry):
    """Single-session serving over the same frozen model (the parity oracle)."""
    return InferenceSession.from_model(
        pool64.model, spec=pool64.spec, registry=fast_registry, max_batch_size=3
    )


@pytest.fixture(scope="module")
def mixed_requests():
    rng = np.random.default_rng(7)
    lengths = (5, 12, 5, 9, 30, 12, 7, 5, 9, 5)
    return [rng.integers(0, 100, size=length) for length in lengths]


def _fresh_pool(pool64, fast_registry, num_replicas=2):
    """A private pool over the shared frozen model (safe to mutate/retire)."""
    return SessionPool.from_model(
        pool64.model, spec=pool64.spec, registry=fast_registry,
        num_replicas=num_replicas, max_batch_size=3,
    )


def _wait_for_inflight(queue: ServingQueue, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while queue._inflight_batches == 0:
        if time.monotonic() > deadline:
            raise TimeoutError("no batch reached a worker in time")
        time.sleep(0.001)


# --------------------------------------------------------------------------- #
# Routers (unit level)
# --------------------------------------------------------------------------- #
class _FakeMember:
    def __init__(self, replica_id, load=0, batches=()):
        self.replica_id = replica_id
        self.load = load
        self.batches = list(batches)


class TestRouters:
    def test_create_router_by_name_and_instance(self):
        assert isinstance(create_router("deterministic"), DeterministicRouter)
        assert isinstance(create_router("least_loaded"), LeastLoadedRouter)
        router = LeastLoadedRouter()
        assert create_router(router) is router

    def test_create_router_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown router"):
            create_router("round_robin")
        with pytest.raises(ValueError, match="available routers"):
            create_router(None)

    def test_deterministic_round_robin_is_a_pure_function_of_order(self):
        members = [_FakeMember(i) for i in range(3)]
        router = DeterministicRouter()
        picks = [router.select(members, None).replica_id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]
        # A second router replays the identical sequence: no hidden state
        # beyond the counter, nothing timing-dependent.
        replay = DeterministicRouter()
        assert [replay.select(members, None).replica_id for _ in range(6)] == picks
        assert not DeterministicRouter.steal_when_idle

    def test_deterministic_counter_survives_membership_changes(self):
        router = DeterministicRouter()
        members = [_FakeMember(i) for i in range(3)]
        assert router.select(members, None).replica_id == 0
        assert router.select(members[:2], None).replica_id == 1
        # Counter keeps advancing over the *current* membership.
        assert router.select(members[:2], None).replica_id == 0

    def test_least_loaded_picks_smallest_outstanding_cost(self):
        members = [
            _FakeMember(0, load=30),
            _FakeMember(1, load=5),
            _FakeMember(2, load=12),
        ]
        assert LeastLoadedRouter().select(members, None).replica_id == 1
        assert LeastLoadedRouter.steal_when_idle

    def test_least_loaded_ties_break_by_queue_then_id(self):
        members = [
            _FakeMember(0, load=5, batches=[object()]),
            _FakeMember(1, load=5, batches=[]),
            _FakeMember(2, load=5, batches=[]),
        ]
        assert LeastLoadedRouter().select(members, None).replica_id == 1


# --------------------------------------------------------------------------- #
# Batch former and admission (unit level)
# --------------------------------------------------------------------------- #
def _pending(length, submitted_at=0.0, deadline_at=None):
    return Pending(
        tokens=np.arange(length, dtype=np.int64),
        future=ServingFuture(),
        submitted_at=submitted_at,
        deadline_at=deadline_at,
    )


class TestBatchFormer:
    def test_groups_by_exact_length_in_arrival_order(self):
        former = BatchFormer(
            max_batch_size=3, bucket_size=1, max_sequence_length=64, max_wait_s=0.01
        )
        window = [_pending(n) for n in (5, 9, 5, 5, 9, 5)]
        groups = former.form(window)
        # Exact-length grouping, stable within a length, chunked to 3 rows.
        assert [[p.tokens.size for p in g] for g in groups] == [[5, 5, 5], [5], [9, 9]]
        assert groups[0][0] is window[0] and groups[0][1] is window[2]

    def test_bucketed_length_rounds_up_and_clamps(self):
        former = BatchFormer(
            max_batch_size=4, bucket_size=8, max_sequence_length=16, max_wait_s=0.0
        )
        assert former.bucketed_length(5) == 8
        assert former.bucketed_length(9) == 16
        assert former.bucketed_length(20) == 16  # clamped to the model max

    def test_saturated_scales_with_live_replicas(self):
        former = BatchFormer(
            max_batch_size=4, bucket_size=1, max_sequence_length=64, max_wait_s=0.0
        )
        assert former.saturated(4, live_replicas=1)
        assert not former.saturated(4, live_replicas=2)
        assert former.saturated(8, live_replicas=2)
        # A fleet transiently at zero members still saturates at one batch.
        assert former.saturated(4, live_replicas=0)

    def test_window_deadline_anchors_at_oldest(self):
        former = BatchFormer(
            max_batch_size=4, bucket_size=1, max_sequence_length=64, max_wait_s=0.25
        )
        assert former.window_deadline(10.0) == pytest.approx(10.25)


class TestAdmission:
    def test_backlog_bound_and_release(self):
        board = StatsBoard()
        admission = AdmissionController(2, board)
        admission.admit()
        admission.admit()
        with pytest.raises(QueueFullError, match="max_queue_depth=2"):
            admission.admit()
        assert board.rejected == 1
        admission.release(1)
        admission.admit()  # capacity returned
        assert admission.backlog == 2

    def test_validate_contract(self):
        validate = AdmissionController.validate
        with pytest.raises(ValueError, match="non-empty 1-D"):
            validate(np.zeros((2, 2), dtype=np.int64), 64, None)
        with pytest.raises(ValueError, match="integers"):
            validate(np.zeros(3, dtype=np.float32), 64, None)
        with pytest.raises(ValueError, match="maximum"):
            validate(np.zeros(65, dtype=np.int64), 64, None)
        with pytest.raises(ValueError, match="deadline_ms"):
            validate(np.zeros(3, dtype=np.int64), 64, -1.0)
        out = validate([1, 2, 3], 64, None)
        assert out.dtype.kind == "i" and out.size == 3

    def test_split_expired_partitions_by_deadline(self):
        live = _pending(3, deadline_at=None)
        fresh = _pending(3, deadline_at=100.0)
        lapsed = _pending(3, deadline_at=1.0)
        kept, expired = AdmissionController.split_expired([live, fresh, lapsed], 50.0)
        assert kept == [live, fresh] and expired == [lapsed]


# --------------------------------------------------------------------------- #
# Router parity through the queue (float64, the PR's hard gate)
# --------------------------------------------------------------------------- #
class TestRouterParity:
    def test_deterministic_router_bitwise_matches_oracle(
        self, pool64, single64, mixed_requests
    ):
        with ServingQueue(pool64, max_wait_ms=1.0) as queue:
            assert queue.stats().router == "deterministic"
            served = queue.serve(mixed_requests, timeout=60)
        oracle = single64.forward(mixed_requests)
        for i, (a, b) in enumerate(zip(served, oracle)):
            assert np.array_equal(a, b), f"request {i}"

    def test_least_loaded_router_bitwise_matches_oracle(
        self, pool64, single64, mixed_requests
    ):
        # Placement is timing-dependent under least-loaded routing; results
        # must not be (every replica serves the same frozen float64 model).
        with ServingQueue(pool64, max_wait_ms=1.0, router="least_loaded") as queue:
            assert queue.stats().router == "least_loaded"
            served = queue.serve(mixed_requests, timeout=60)
            stats = queue.stats()
        oracle = single64.forward(mixed_requests)
        for i, (a, b) in enumerate(zip(served, oracle)):
            assert np.array_equal(a, b), f"request {i}"
        assert stats.completed == len(mixed_requests)

    def test_per_replica_stats_rows(self, pool64, mixed_requests):
        with ServingQueue(pool64, max_wait_ms=1.0) as queue:
            queue.serve(mixed_requests, timeout=60)
            stats = queue.stats()
        assert [r.replica_id for r in stats.replicas] == [0, 1]
        assert all(isinstance(r, ReplicaStats) for r in stats.replicas)
        assert stats.live_replicas == 2
        assert sum(r.completed for r in stats.replicas) == len(mixed_requests)
        assert sum(r.batches_served for r in stats.replicas) == stats.batches
        assert all(
            r.queued_cost == 0 and r.in_flight_requests == 0 for r in stats.replicas
        )
        assert stats.replicas_added == 0 and stats.replicas_retired == 0


# --------------------------------------------------------------------------- #
# Live membership
# --------------------------------------------------------------------------- #
class TestMembership:
    def test_retire_waits_for_inflight_and_routes_nothing_new(
        self, pool64, fast_registry, mixed_requests
    ):
        pool = _fresh_pool(pool64, fast_registry)
        gate = threading.Event()
        inner = pool.sessions[0].forward

        def gated_forward(requests):
            gate.wait(30)
            return inner(requests)

        pool.sessions[0].forward = gated_forward  # type: ignore[method-assign]
        queue = ServingQueue(pool, max_wait_ms=0.0)
        try:
            # Deterministic routing: the first formed batch lands on replica 0,
            # whose forward is gated — it is now mid-service.
            first = queue.submit(mixed_requests[0])
            _wait_for_inflight(queue)

            retired = threading.Event()

            def retire() -> None:
                queue.retire_replica(0, timeout=30)
                retired.set()

            thread = threading.Thread(target=retire, daemon=True)
            thread.start()
            time.sleep(0.1)
            # The retire must block on the in-flight batch, not abandon it.
            assert not retired.is_set()
            # New work submitted mid-retire routes to the survivor only.
            second = queue.submit(mixed_requests[1])
            gate.set()
            thread.join(30)
            assert retired.is_set()
            assert first.result(timeout=60).shape[0] == mixed_requests[0].size
            assert second.result(timeout=60).shape[0] == mixed_requests[1].size
            stats = queue.stats()
            assert [r.replica_id for r in stats.replicas] == [1]
            assert stats.replicas_retired == 1
            assert stats.replicas[0].completed >= 1  # the survivor served it
            assert pool.num_replicas == 1  # released from the pool too
        finally:
            gate.set()
            queue.close()

    def test_cannot_retire_or_drain_last_replica(self, pool64, fast_registry):
        pool = _fresh_pool(pool64, fast_registry, num_replicas=1)
        queue = ServingQueue(pool, max_wait_ms=0.0)
        try:
            with pytest.raises(ValueError, match="last live replica"):
                queue.retire_replica(0)
            with pytest.raises(ValueError, match="last live replica"):
                queue.drain_replica(0)
            with pytest.raises(ValueError, match="unknown replica id"):
                queue.retire_replica(99)
            assert queue.retire_one_replica() is None
        finally:
            queue.close()

    def test_drain_replica_stops_new_routing(self, pool64, fast_registry, mixed_requests):
        pool = _fresh_pool(pool64, fast_registry)
        queue = ServingQueue(pool, max_wait_ms=0.0)
        try:
            queue.drain_replica(0)
            stats = queue.stats()
            assert stats.replicas[0].draining and not stats.replicas[1].draining
            assert stats.live_replicas == 1
            served = queue.serve(mixed_requests[:4], timeout=60)
            assert all(out is not None for out in served)
            # Everything went to the non-draining member.
            stats = queue.stats()
            survivor = stats.replicas[1]
            assert survivor.completed == 4
        finally:
            queue.close()

    def test_hot_add_under_load(self, pool64, single64, fast_registry, mixed_requests):
        pool = _fresh_pool(pool64, fast_registry, num_replicas=1)
        queue = ServingQueue(pool, max_wait_ms=1.0)
        try:
            first_half = [queue.submit(tokens) for tokens in mixed_requests[:5]]
            new_id = queue.add_replica()
            assert new_id == 1
            assert pool.num_replicas == 2
            second_half = [queue.submit(tokens) for tokens in mixed_requests[5:]]
            results = [f.result(60) for f in first_half + second_half]
            oracle = single64.forward(mixed_requests)
            for i, (a, b) in enumerate(zip(results, oracle)):
                assert np.array_equal(a, b), f"request {i}"
            stats = queue.stats()
            assert stats.replicas_added == 1
            assert stats.live_replicas == 2
            assert stats.completed == len(mixed_requests)
        finally:
            queue.close()

    def test_dead_replica_is_retired_and_replaced(
        self, pool64, fast_registry, mixed_requests
    ):
        pool = _fresh_pool(pool64, fast_registry)

        def dying_forward(requests):
            raise RuntimeError("replica poisoned")

        pool.sessions[1].forward = dying_forward  # type: ignore[method-assign]
        pool.sessions[1].defunct = True  # what a dead shard client reports
        queue = ServingQueue(
            pool, max_wait_ms=0.0, replace_dead_replicas=True
        )
        try:
            outcomes = []
            for tokens in mixed_requests[:4]:
                try:
                    outcomes.append(queue.serve_one(tokens, timeout=60))
                except RuntimeError:
                    outcomes.append(None)
            # Round-robin hits the dead replica exactly once before it is
            # retired; everything else serves on the healthy member(s).
            failures = sum(1 for out in outcomes if out is None)
            assert failures <= 1
            deadline = time.monotonic() + 10
            while queue.stats().replicas_added < 1:
                assert time.monotonic() < deadline, "replacement never joined"
                time.sleep(0.01)
            stats = queue.stats()
            assert stats.replicas_retired == 1
            assert stats.live_replicas == 2  # survivor + replacement
            assert all(r.replica_id != 1 for r in stats.replicas)
            # The replacement actually serves traffic.
            served = queue.serve(mixed_requests[4:8], timeout=60)
            assert len(served) == 4
        finally:
            queue.close()

    def test_sharded_pool_hot_add_and_retire(self, fast_registry, mixed_requests):
        config = SessionConfig(
            model_family="tiny", compute_dtype="float64", max_batch_size=3
        )
        pool = ShardedPool(
            config, spec=BackendSpec.nn_lut(), registry=fast_registry,
            num_replicas=1,
        )
        try:
            oracle = pool.template.forward(mixed_requests[:4])
            with ServingQueue(pool, max_wait_ms=1.0) as queue:
                queue.serve(mixed_requests[:2], timeout=120)
                new_id = queue.add_replica()
                assert pool.num_replicas == 2
                served = queue.serve(mixed_requests[:4], timeout=120)
                for i, (a, b) in enumerate(zip(served, oracle)):
                    assert np.array_equal(a, b), f"request {i}"
                queue.retire_replica(new_id, timeout=60)
                assert pool.num_replicas == 1
                # The worker process is truly gone, not just unrouted.
                again = queue.serve(mixed_requests[:4], timeout=120)
                for i, (a, b) in enumerate(zip(again, oracle)):
                    assert np.array_equal(a, b), f"request {i}"
                stats = queue.stats()
                assert stats.replicas_added == 1 and stats.replicas_retired == 1
        finally:
            pool.close()


# --------------------------------------------------------------------------- #
# Autoscaler (pure hysteresis over synthetic stats, plus actuation)
# --------------------------------------------------------------------------- #
def _stats(wait_ms, service_ms, completed, live=2):
    replicas = tuple(
        ReplicaStats(
            replica_id=i, queued_batches=0, queued_requests=0, queued_cost=0,
            in_flight_requests=0, in_flight_cost=0, batches_served=0,
            completed=0, failed=0, stolen=0, draining=False, live=True,
        )
        for i in range(live)
    )
    return ServingStats(
        submitted=completed, completed=completed, rejected=0, expired=0,
        failed=0, queue_depth=0, max_queue_depth_seen=0, batches=completed,
        mean_batch_size=1.0, p50_latency_ms=wait_ms + service_ms,
        p99_latency_ms=wait_ms + service_ms,
        mean_latency_ms=wait_ms + service_ms, p50_queue_wait_ms=wait_ms,
        p99_queue_wait_ms=wait_ms, mean_queue_wait_ms=wait_ms,
        p50_service_ms=service_ms, p99_service_ms=service_ms,
        mean_service_ms=service_ms, throughput_rps=1.0, replicas=replicas,
    )


class TestAutoscalerHysteresis:
    def _scaler(self, **overrides):
        defaults = dict(
            min_replicas=1, max_replicas=4, patience=2, cooldown_ticks=2
        )
        defaults.update(overrides)
        return Autoscaler(queue=None, config=AutoscalerConfig(**defaults))

    def test_config_validation(self):
        with pytest.raises(ValueError, match="min_replicas"):
            AutoscalerConfig(min_replicas=0)
        with pytest.raises(ValueError, match="max_replicas"):
            AutoscalerConfig(min_replicas=3, max_replicas=2)
        with pytest.raises(ValueError, match="patience"):
            AutoscalerConfig(patience=0)
        with pytest.raises(ValueError, match="interval_s"):
            AutoscalerConfig(interval_s=0)

    def test_single_spike_does_not_scale(self):
        scaler = self._scaler()
        # Spike, settle, spike: the up-streak never reaches patience=2.
        assert scaler.observe(_stats(50.0, 1.0, completed=5)).action == "hold"
        assert scaler.observe(_stats(0.5, 1.0, completed=10)).action == "hold"
        assert scaler.observe(_stats(50.0, 1.0, completed=15)).action == "hold"
        assert scaler.observe(_stats(0.5, 1.0, completed=20)).action == "hold"

    def test_sustained_pressure_scales_up_then_cools_down(self):
        scaler = self._scaler()
        assert scaler.observe(_stats(50.0, 1.0, completed=5)).action == "hold"
        decision = scaler.observe(_stats(50.0, 1.0, completed=10))
        assert decision.action == "up"
        # Cooldown: the same pressure is ignored while the fleet settles.
        third = scaler.observe(_stats(50.0, 1.0, completed=15))
        assert third.action == "hold" and "cooldown" in third.reason
        assert scaler.observe(_stats(50.0, 1.0, completed=20)).action == "hold"
        # Pressure persisting after the cooldown builds a fresh streak.
        assert scaler.observe(_stats(50.0, 1.0, completed=25)).action == "hold"
        assert scaler.observe(_stats(50.0, 1.0, completed=30)).action == "up"

    def test_rising_service_time_is_not_queue_pressure(self):
        scaler = self._scaler()
        assert scaler.observe(_stats(10.0, 5.0, completed=5)).action == "hold"
        # Service doubled alongside wait: the replicas got slower; scaling
        # out cannot unqueue anything, so no up-streak accumulates.
        decision = scaler.observe(_stats(30.0, 20.0, completed=10))
        assert decision.action == "hold"
        assert "service time rising" in decision.reason

    def test_idle_and_low_pressure_scale_down_within_bounds(self):
        scaler = self._scaler()
        assert scaler.observe(_stats(0.01, 1.0, completed=5, live=3)).action == "hold"
        decision = scaler.observe(_stats(0.01, 1.0, completed=10, live=3))
        assert decision.action == "down"
        # Idle windows (no completions) also build down-pressure.
        idle = self._scaler()
        # A mid-band tick first, so only the idle streak drives the decision.
        assert idle.observe(_stats(0.5, 1.0, completed=5, live=2)).action == "hold"
        assert idle.observe(_stats(0.0, 0.0, completed=5, live=2)).action == "hold"
        decision = idle.observe(_stats(0.0, 0.0, completed=5, live=2))
        assert decision.action == "down" and "idle" in decision.reason

    def test_bounds_suppress_actions(self):
        scaler = self._scaler(min_replicas=2, max_replicas=2)
        assert scaler.observe(_stats(50.0, 1.0, completed=5)).action == "hold"
        at_max = scaler.observe(_stats(50.0, 1.0, completed=10))
        assert at_max.action == "hold" and "max_replicas" in at_max.reason
        down = self._scaler(min_replicas=2)
        down.observe(_stats(0.01, 1.0, completed=5, live=2))
        at_min = down.observe(_stats(0.01, 1.0, completed=10, live=2))
        assert at_min.action == "hold" and "min_replicas" in at_min.reason

    def test_below_min_scales_up_immediately(self):
        scaler = self._scaler(min_replicas=2)
        decision = scaler.observe(_stats(0.0, 0.0, completed=0, live=1))
        assert decision.action == "up" and "below min_replicas" in decision.reason


class _FakeQueue:
    """Records autoscaler actuation without any serving machinery."""

    def __init__(self, stats_rows):
        self._rows = list(stats_rows)
        self.added = 0
        self.retired = 0

    def stats(self):
        return self._rows.pop(0)

    def add_replica(self):
        self.added += 1
        return 7

    def retire_one_replica(self, timeout=30.0):
        self.retired += 1
        return 3


class TestAutoscalerActuation:
    def test_step_applies_up_and_records_episode(self):
        queue = _FakeQueue([
            _stats(50.0, 1.0, completed=5),
            _stats(50.0, 1.0, completed=10),
        ])
        scaler = Autoscaler(
            queue, AutoscalerConfig(patience=2, cooldown_ticks=0, max_replicas=4)
        )
        assert scaler.step().action == "hold"
        decision = scaler.step()
        assert decision.action == "up" and decision.applied
        assert decision.replica_id == 7 and queue.added == 1
        episodes = scaler.episodes()
        assert len(episodes) == 2
        assert all(isinstance(e, AutoscaleDecision) for e in episodes)

    def test_step_folds_actuation_failure_into_reason(self):
        class _Failing(_FakeQueue):
            def add_replica(self):
                raise RuntimeError("pool refused")

        queue = _Failing([_stats(50.0, 1.0, completed=5)])
        scaler = Autoscaler(
            queue, AutoscalerConfig(patience=1, cooldown_ticks=0)
        )
        decision = scaler.step()
        assert decision.action == "up" and not decision.applied
        assert "add failed" in decision.reason

    def test_queue_scales_up_to_min_via_manual_step(self, pool64, fast_registry):
        pool = _fresh_pool(pool64, fast_registry, num_replicas=1)
        queue = ServingQueue(
            pool, max_wait_ms=1.0,
            autoscale=AutoscalerConfig(
                min_replicas=2, max_replicas=3, interval_s=30.0
            ),
        )
        try:
            assert queue.autoscaler is not None
            decision = queue.autoscaler.step()
            assert decision.action == "up" and decision.applied
            assert queue.stats().live_replicas == 2
            assert pool.num_replicas == 2
        finally:
            queue.close()


# --------------------------------------------------------------------------- #
# Trace replay: burst + churn, no lost or double-served futures
# --------------------------------------------------------------------------- #
class TestTraceReplay:
    def test_trace_generation_is_seed_deterministic(self):
        first = traces.generate_trace(
            num_requests=32, duration_s=0.5, seed=3, max_length=16
        )
        again = traces.generate_trace(
            num_requests=32, duration_s=0.5, seed=3, max_length=16
        )
        assert first.arrivals_s == again.arrivals_s
        assert first.lengths == again.lengths
        assert all(
            np.array_equal(a, b) for a, b in zip(first.requests, again.requests)
        )
        assert first.burst_windows == again.burst_windows
        other = traces.generate_trace(
            num_requests=32, duration_s=0.5, seed=4, max_length=16
        )
        assert first.arrivals_s != other.arrivals_s

    def test_trace_shape_contract(self):
        trace = traces.generate_trace(
            num_requests=64, duration_s=1.0, seed=5, min_length=2, max_length=16,
            num_bursts=2,
        )
        assert len(trace.arrivals_s) == 64 and len(trace.requests) == 64
        assert list(trace.arrivals_s) == sorted(trace.arrivals_s)
        assert all(0.0 <= at <= 1.0 for at in trace.arrivals_s)
        assert all(2 <= length <= 16 for length in trace.lengths)
        assert len(trace.burst_windows) == 2
        assert any(trace.in_burst(i) for i in range(64))  # bursts attract mass

    def test_replay_with_midrun_churn_loses_nothing(
        self, pool64, single64, fast_registry
    ):
        trace = traces.generate_trace(
            num_requests=24, duration_s=0.4, seed=11,
            min_length=2, max_length=16, vocab_size=100,
        )
        pool = _fresh_pool(pool64, fast_registry, num_replicas=2)
        queue = ServingQueue(pool, max_wait_ms=1.0, router="least_loaded")
        try:
            result = traces.replay(
                queue,
                trace,
                actions=[
                    (0.12, queue.add_replica),
                    (0.25, lambda: queue.retire_one_replica(timeout=30)),
                ],
            )
            stats = queue.stats()
        finally:
            queue.close()
        assert result.failed == 0, [o.error for o in result.outcomes if not o.ok]
        # No future lost (everything completed) and none double-served (the
        # completion count matches the request count exactly).
        assert result.completed == trace.config.num_requests
        assert stats.completed == trace.config.num_requests
        assert stats.queue_depth == 0
        assert stats.replicas_added == 1 and stats.replicas_retired == 1
        assert stats.live_replicas == 2
        # Bitwise parity vs the single-session oracle, churn and all.
        oracle = single64.forward(list(trace.requests))
        for outcome in result.outcomes:
            assert np.array_equal(outcome.result, oracle[outcome.index]), (
                f"request {outcome.index}"
            )

    def test_burst_digest_partitions_outcomes(self):
        trace = traces.generate_trace(
            num_requests=40, duration_s=0.5, seed=9, max_length=16
        )
        outcomes = tuple(
            traces.ReplayOutcome(
                index=i, arrival_s=trace.arrivals_s[i], length=trace.lengths[i],
                in_burst=trace.in_burst(i), latency_ms=float(1 + i % 7),
                error=None,
            )
            for i in range(40)
        )
        digest = traces.burst_digest(
            traces.ReplayResult(outcomes=outcomes, elapsed_s=0.5)
        )
        assert digest["failed"] == 0
        assert digest["all"]["count"] == 40
        assert digest["burst"]["count"] + digest["steady"]["count"] == 40
        assert digest["all"]["p99_ms"] >= digest["all"]["p50_ms"] > 0.0
