"""RequestBatcher buffer semantics: aliasing, growth, re-zeroing, capping.

The serving hot path runs ``iter_batches(..., copy=False)`` — zero per-batch
allocation, but each yielded batch is a view into the batcher's reusable
buffers and only valid until the next pull.  These tests pin down that
contract (and the re-zeroing between padded fills) so the concurrent serving
layer can rely on it.
"""

import numpy as np
import pytest

from repro.api import RequestBatcher


class TestCopyFalseAliasing:
    def test_next_pull_invalidates_previous_batch(self):
        batcher = RequestBatcher(max_batch_size=1)
        requests = [np.full(4, 7), np.full(4, 9)]
        batches = batcher.iter_batches(requests, copy=False)
        first = next(batches)
        kept = first.tokens
        assert np.array_equal(kept[0], np.full(4, 7))
        second = next(batches)
        # Same backing buffer: the earlier batch's view now shows the new
        # batch's rows — documented invalidation, not a defect.
        assert np.shares_memory(kept, second.tokens)
        assert np.array_equal(kept[0], np.full(4, 9))

    def test_copy_true_batches_survive_the_next_pull(self):
        batcher = RequestBatcher(max_batch_size=1)
        requests = [np.full(4, 7), np.full(4, 9)]
        batches = list(batcher.iter_batches(requests))
        assert np.array_equal(batches[0].tokens[0], np.full(4, 7))
        assert np.array_equal(batches[1].tokens[0], np.full(4, 9))

    def test_geometric_growth_reallocates_then_stabilises(self):
        batcher = RequestBatcher(max_batch_size=2)
        short = [np.arange(1, 5)]  # 4 columns
        long = [np.arange(1, 12)]  # 11 columns > 2 * 4: forces a reallocation
        (b_short,) = batcher.iter_batches(short, copy=False)
        first_base = b_short.tokens.base
        assert first_base is not None
        (b_long,) = batcher.iter_batches(long, copy=False)
        grown_base = b_long.tokens.base
        assert grown_base is not first_base
        assert np.array_equal(b_long.tokens[0], np.arange(1, 12))
        # Once grown, shorter batches reuse the grown buffer (no churn) —
        # which is exactly why a held copy=False batch goes stale.
        (b_again,) = batcher.iter_batches(short, copy=False)
        assert b_again.tokens.base is grown_base
        assert np.array_equal(b_again.tokens[0], np.arange(1, 5))


class TestPaddedBufferReZeroing:
    def test_mask_rezeroed_between_padded_batches(self):
        batcher = RequestBatcher(max_batch_size=2, bucket_size=4)
        first = list(
            batcher.iter_batches([np.arange(1, 3), np.arange(1, 5)], copy=False)
        )
        assert np.array_equal(first[0].mask, [[1, 1, 0, 0], [1, 1, 1, 1]])
        # The second fill reuses the same mask buffer with a shorter row
        # where the previous fill wrote ones — stale ones must not survive.
        second = list(
            batcher.iter_batches([np.arange(1, 5), np.arange(1, 2)], copy=False)
        )
        assert np.array_equal(second[0].mask, [[1, 1, 1, 1], [1, 0, 0, 0]])

    def test_tokens_rezeroed_between_padded_batches(self):
        batcher = RequestBatcher(max_batch_size=2, bucket_size=4)
        list(batcher.iter_batches([np.full(4, 5), np.full(4, 5)], copy=False))
        (batch,) = batcher.iter_batches([np.array([1]), np.array([2])], copy=False)
        # Rows are padded with token id 0, not with the previous fill's 5s.
        assert np.array_equal(batch.tokens, [[1, 0, 0, 0], [2, 0, 0, 0]])


class TestPlanCapping:
    def test_bucketed_lengths_cap_at_max_length(self):
        batcher = RequestBatcher(max_batch_size=4, bucket_size=6)
        # 9 and 10 bucket to 12, past the model maximum 10: both cap at 10
        # (a valid request is never padded beyond the limit).
        assert batcher.plan([9, 10, 3], max_length=10) == [(6, (2,)), (10, (0, 1))]

    def test_capping_merges_requests_that_would_otherwise_split(self):
        batcher = RequestBatcher(max_batch_size=8, bucket_size=8)
        assert batcher.plan([17, 20, 19], max_length=20) == [(20, (0, 1, 2))]

    def test_capped_bucket_serves_through_iter_batches(self):
        batcher = RequestBatcher(max_batch_size=4, bucket_size=6)
        (batch,) = batcher.iter_batches(
            [np.arange(1, 10), np.arange(1, 11)], max_length=10, copy=False
        )
        assert batch.tokens.shape == (2, 10)
        assert np.array_equal(batch.mask, [[1] * 9 + [0], [1] * 10])


class TestPackedRagged:
    """The lengths-plus-concatenation layout the transport rings ship."""

    def test_roundtrip_1d(self):
        items = [np.arange(5, dtype=np.int64), np.arange(50, 53, dtype=np.int64)]
        out = np.empty(8, dtype=np.int64)
        packed = RequestBatcher.pack_ragged(items, out)
        assert packed is out
        unpacked = RequestBatcher.unpack_ragged(out, [5, 3])
        assert all(np.array_equal(a, b) for a, b in zip(unpacked, items))
        # Views, not copies: the caller decides whether to detach.
        assert np.shares_memory(unpacked[0], out)

    def test_roundtrip_rows(self):
        rng = np.random.default_rng(0)
        items = [rng.normal(size=(4, 3)), rng.normal(size=(2, 3))]
        out = np.empty((6, 3))
        RequestBatcher.pack_ragged(items, out)
        unpacked = RequestBatcher.unpack_ragged(out, [4, 2])
        assert all(np.array_equal(a, b) for a, b in zip(unpacked, items))

    def test_pack_rejects_overflow_and_underfill(self):
        items = [np.arange(5, dtype=np.int64)]
        with pytest.raises(ValueError, match="overflow"):
            RequestBatcher.pack_ragged(items, np.empty(4, dtype=np.int64))
        with pytest.raises(ValueError, match="fill only"):
            RequestBatcher.pack_ragged(items, np.empty(9, dtype=np.int64))

    def test_unpack_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="lengths sum"):
            RequestBatcher.unpack_ragged(np.empty(4, dtype=np.int64), [5])
