"""Tests for the hardware cost models: components, units, workload, accelerator."""

import numpy as np
import pytest

from repro.hardware import (
    AcceleratorConfig,
    AcceleratorSimulator,
    IBERT_COST_MODEL,
    IBertUnit,
    NN_LUT_COST_MODEL,
    NnLutUnit,
    NonlinearCostModel,
    build_table4_units,
    build_workload,
    default_library,
    run_system_comparison,
)
from repro.transformer.config import mobilebert_config, roberta_base_config


class TestComponentLibrary:
    def test_costs_scale_with_width(self):
        lib = default_library()
        assert lib.adder(32).area_um2 > lib.adder(16).area_um2
        assert lib.multiplier(32).area_um2 > 2 * lib.multiplier(16).area_um2
        assert lib.divider(32).delay_ns > lib.adder(32).delay_ns

    def test_table_cost_scales_with_entries(self):
        lib = default_library()
        assert lib.table(32, 64).area_um2 == pytest.approx(2 * lib.table(16, 64).area_um2)

    def test_fp_units_cost_more_than_int_of_same_mantissa(self):
        lib = default_library()
        assert lib.fp_multiplier(32).delay_ns > lib.multiplier(24).delay_ns
        assert lib.fp_adder(32).area_um2 > lib.adder(24).area_um2

    def test_scaled_helper(self):
        lib = default_library()
        single = lib.register(32)
        four = single.scaled(4)
        assert four.area_um2 == pytest.approx(4 * single.area_um2)
        assert four.delay_ns == single.delay_ns


class TestArithmeticUnits:
    def test_table4_ratios(self):
        units = {f"{u.name} {u.precision}": u for u in build_table4_units()}
        ibert = units["I-BERT INT32"]
        nn_int32 = units["NN-LUT INT32"]
        # Paper: 2.63x area, 36.4x power, 3.93x delay.
        assert 2.0 < ibert.area_um2 / nn_int32.area_um2 < 3.5
        assert 20.0 < ibert.power_mw / nn_int32.power_mw < 60.0
        assert 3.0 < ibert.delay_ns / nn_int32.delay_ns < 5.0

    def test_absolute_numbers_near_paper(self):
        units = {f"{u.name} {u.precision}": u for u in build_table4_units()}
        paper = {
            "I-BERT INT32": 2654.32,
            "NN-LUT INT32": 1008.92,
            "NN-LUT FP16": 498.38,
            "NN-LUT FP32": 1133.60,
        }
        for key, area in paper.items():
            assert abs(units[key].area_um2 - area) / area < 0.20

    def test_latency_cycles(self):
        nn = NnLutUnit(precision="int32").cost()
        ib = IBertUnit().cost()
        assert set(nn.latency_cycles.values()) == {2}
        assert ib.latency_cycles["gelu"] == 3
        assert ib.latency_cycles["exp"] == 4
        assert ib.latency_cycles["rsqrt"] == 5

    def test_fp16_smaller_than_fp32(self):
        fp16 = NnLutUnit(precision="fp16").cost()
        fp32 = NnLutUnit(precision="fp32").cost()
        assert fp16.area_um2 < fp32.area_um2

    def test_validation(self):
        with pytest.raises(ValueError):
            NnLutUnit(precision="int8")
        with pytest.raises(ValueError):
            NnLutUnit(num_entries=1)
        with pytest.raises(ValueError):
            IBertUnit(precision="fp32")

    def test_as_row(self):
        row = NnLutUnit().cost().as_row()
        assert row["unit"] == "NN-LUT"
        assert "area_um2" in row


class TestWorkload:
    def test_macs_scale_with_sequence_length(self):
        short = build_workload(64)
        long = build_workload(512)
        assert long.total_macs > short.total_macs

    def test_roberta_base_mac_count(self):
        workload = build_workload(128, config=roberta_base_config())
        hidden, inter, layers = 768, 3072, 12
        expected_per_layer = (
            4 * 128 * hidden * hidden + 2 * 128 * 128 * hidden + 2 * 128 * hidden * inter
        )
        assert workload.total_macs == expected_per_layer * layers

    def test_softmax_elements_quadratic_in_seq(self):
        totals_128 = build_workload(128).nonlinear_totals()
        totals_256 = build_workload(256).nonlinear_totals()
        assert totals_256["softmax"]["elements"] == 4 * totals_128["softmax"]["elements"]
        assert totals_256["gelu"]["elements"] == 2 * totals_128["gelu"]["elements"]

    def test_mobilebert_has_no_gelu_or_layernorm(self):
        workload = build_workload(64, config=mobilebert_config())
        totals = workload.nonlinear_totals()
        assert "gelu" not in totals
        assert "layernorm" not in totals
        assert "softmax" in totals

    def test_validation(self):
        with pytest.raises(ValueError):
            build_workload(0)
        with pytest.raises(ValueError):
            build_workload(4096, config=roberta_base_config())


class TestAcceleratorModel:
    def test_nn_lut_always_faster(self):
        simulator = AcceleratorSimulator()
        for seq in (16, 128, 1024):
            workload = build_workload(seq)
            ibert = simulator.run(workload, IBERT_COST_MODEL)
            nn_lut = simulator.run(workload, NN_LUT_COST_MODEL)
            assert nn_lut.total < ibert.total

    def test_breakdown_sums_to_100(self):
        simulator = AcceleratorSimulator()
        breakdown = simulator.run(build_workload(256), IBERT_COST_MODEL)
        assert sum(breakdown.relative().values()) == pytest.approx(100.0)

    def test_speedup_grows_with_sequence_length(self):
        comparison = run_system_comparison(sequence_lengths=(16, 128, 1024))
        speedups = comparison.speedups()
        assert speedups[16] < speedups[128] < speedups[1024]

    def test_speedups_match_paper_trend(self):
        comparison = run_system_comparison(sequence_lengths=(16, 1024))
        speedups = comparison.speedups()
        assert speedups[16] == pytest.approx(1.08, abs=0.03)
        assert speedups[1024] == pytest.approx(1.26, abs=0.04)

    def test_softmax_share_grows_with_sequence_length(self):
        comparison = run_system_comparison(sequence_lengths=(16, 1024))
        first, last = comparison.points
        assert last.ibert.relative()["Softmax"] > first.ibert.relative()["Softmax"]

    def test_nonlinear_share_lower_for_nn_lut(self):
        comparison = run_system_comparison(sequence_lengths=(512,))
        point = comparison.points[0]
        assert point.nonlinear_share("nn_lut") < point.nonlinear_share("ibert")

    def test_unknown_cost_kind_raises(self):
        model = NonlinearCostModel(name="partial", element_cycles={"gelu": 1.0}, row_cycles={})
        simulator = AcceleratorSimulator()
        with pytest.raises(KeyError):
            simulator.run(build_workload(32), model)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(num_engines=0)
        with pytest.raises(ValueError):
            AcceleratorConfig(matmul_efficiency=1.5)
