"""Tier-1 shim over the example suite: example drift fails the build.

Runs every ``examples/*.py`` script in a subprocess with ``EXAMPLES_SMOKE=1``
(the same mode ``scripts/run_examples.sh`` uses), so the examples stay
working demonstrations of the public API.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLE_SCRIPTS = sorted(
    path for path in EXAMPLES_DIR.glob("*.py") if path.name != "example_utils.py"
)


def test_example_suite_is_complete():
    """Every example is picked up (guards against glob/layout drift)."""
    names = {path.name for path in EXAMPLE_SCRIPTS}
    assert {
        "approximate_transformer.py",
        "calibration_demo.py",
        "chaos_demo.py",
        "hardware_speedup.py",
        "operator_accuracy.py",
        "quickstart.py",
        "serving_demo.py",
        "sharded_serving_demo.py",
    } <= names


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.stem)
def test_example_runs_in_smoke_mode(script: Path):
    env = dict(os.environ)
    env["EXAMPLES_SMOKE"] = "1"
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "") if env.get("PYTHONPATH") else src
    result = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script.name} failed with exit code {result.returncode}\n"
        f"--- stdout ---\n{result.stdout}\n--- stderr ---\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"
