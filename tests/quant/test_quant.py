"""Tests for the fixed-point and FP16 numeric helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant import (
    compute_scale,
    fake_quantize,
    fp16_matmul,
    fp16_roundtrip,
    quantize,
    quantized_matmul,
    to_fp16,
)


class TestFixedPoint:
    def test_scale_of_zeros_is_one(self):
        assert compute_scale(np.zeros(10)) == 1.0

    def test_roundtrip_error_bounded_by_half_step(self, rng):
        values = rng.normal(0, 3, size=1000)
        scale = compute_scale(values, num_bits=8)
        recovered = fake_quantize(values, num_bits=8)
        assert np.max(np.abs(recovered - values)) <= scale / 2 + 1e-12

    def test_quantize_respects_bit_range(self, rng):
        q = quantize(rng.normal(size=500), num_bits=8)
        assert q.data.max() <= 127 and q.data.min() >= -127

    def test_higher_bits_lower_error(self, rng):
        values = rng.normal(size=500)
        err8 = np.abs(fake_quantize(values, 8) - values).max()
        err16 = np.abs(fake_quantize(values, 16) - values).max()
        assert err16 < err8

    def test_quantized_matmul_close_to_float(self, rng):
        a = rng.normal(size=(16, 32))
        w = rng.normal(size=(32, 8))
        exact = a @ w
        approx = quantized_matmul(a, w)
        relative = np.abs(approx - exact) / (np.abs(exact) + 1e-3)
        assert np.median(relative) < 0.05

    def test_num_bits_validation(self):
        with pytest.raises(ValueError):
            compute_scale(np.ones(3), num_bits=1)

    @given(hnp.arrays(np.float64, 32, elements=st.floats(-100, 100)))
    @settings(max_examples=40, deadline=None)
    def test_fake_quantize_idempotent(self, values):
        once = fake_quantize(values, num_bits=8)
        twice = fake_quantize(once, num_bits=8)
        np.testing.assert_allclose(once, twice, atol=1e-9)


class TestFp16:
    def test_roundtrip_precision(self):
        values = np.array([1.0, 0.1, 3.14159, 1000.0])
        assert np.max(np.abs(fp16_roundtrip(values) - values) / values) < 1e-3

    def test_to_fp16_dtype(self):
        assert to_fp16(np.ones(3)).dtype == np.float16

    def test_fp16_matmul_close_to_fp64(self, rng):
        a = rng.normal(size=(8, 16))
        b = rng.normal(size=(16, 4))
        exact = a @ b
        approx = fp16_matmul(a, b)
        assert np.max(np.abs(approx - exact)) < 0.05
