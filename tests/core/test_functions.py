"""Tests for the reference non-linear functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import functions


class TestGelu:
    def test_zero(self):
        assert functions.gelu(0.0) == pytest.approx(0.0)

    def test_large_positive_is_identity(self):
        x = np.array([6.0, 10.0, 50.0])
        np.testing.assert_allclose(functions.gelu(x), x, rtol=1e-6)

    def test_large_negative_is_zero(self):
        x = np.array([-6.0, -10.0, -50.0])
        np.testing.assert_allclose(functions.gelu(x), 0.0, atol=1e-6)

    def test_known_value(self):
        # GELU(1) = 0.5 * (1 + erf(1/sqrt(2))) = 0.8413447...
        assert functions.gelu(1.0) == pytest.approx(0.841344746, abs=1e-6)

    def test_monotone_on_positive_axis(self):
        x = np.linspace(0, 5, 100)
        assert np.all(np.diff(functions.gelu(x)) >= 0)

    @given(st.floats(min_value=-30, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_bounded_below(self, x):
        assert functions.gelu(x) >= -0.17


class TestSoftmax:
    def test_sums_to_one(self, rng):
        x = rng.normal(size=(4, 7))
        out = functions.softmax(x, axis=-1)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-12)

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(
            functions.softmax(x), functions.softmax(x + 100.0), rtol=1e-10
        )

    def test_handles_large_inputs(self):
        x = np.array([1000.0, 999.0, 998.0])
        out = functions.softmax(x)
        assert np.all(np.isfinite(out))
        assert out[0] > out[1] > out[2]

    def test_uniform_for_equal_inputs(self):
        out = functions.softmax(np.zeros(8))
        np.testing.assert_allclose(out, 1.0 / 8.0)

    def test_axis_argument(self, rng):
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(functions.softmax(x, axis=0).sum(axis=0), 1.0)


class TestLayerNorm:
    def test_output_statistics(self, rng):
        x = rng.normal(3.0, 5.0, size=(6, 64))
        out = functions.layer_norm(x)
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, rtol=1e-3)

    def test_affine_parameters(self, rng):
        x = rng.normal(size=(2, 16))
        gamma = np.full(16, 2.0)
        beta = np.full(16, -1.0)
        plain = functions.layer_norm(x)
        affine = functions.layer_norm(x, gamma=gamma, beta=beta)
        np.testing.assert_allclose(affine, plain * 2.0 - 1.0, rtol=1e-10)

    def test_constant_row_is_finite(self):
        out = functions.layer_norm(np.full((1, 8), 3.0))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, 0.0, atol=1e-3)


class TestScalarPrimitives:
    def test_erf_matches_scipy_symmetry(self):
        x = np.linspace(-3, 3, 50)
        np.testing.assert_allclose(functions.erf(x), -functions.erf(-x), atol=1e-12)

    def test_reciprocal(self):
        np.testing.assert_allclose(functions.reciprocal(np.array([1.0, 2.0, 4.0])), [1.0, 0.5, 0.25])

    def test_rsqrt(self):
        np.testing.assert_allclose(functions.rsqrt(np.array([1.0, 4.0, 100.0])), [1.0, 0.5, 0.1])

    def test_registry_lookup(self):
        assert functions.get_target_function("gelu") is functions.gelu
        assert functions.get_training_range("exp") == (-256.0, 0.0)

    def test_registry_unknown_raises(self):
        with pytest.raises(KeyError, match="Unknown target function"):
            functions.get_target_function("tanhh")
        with pytest.raises(KeyError, match="Unknown target function"):
            functions.get_training_range("nope")

    def test_table1_ranges_present(self):
        for name in ("gelu", "exp", "reciprocal", "rsqrt"):
            low, high = functions.get_training_range(name)
            assert high > low
