"""Tests for input scaling, LUT precision variants and calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import functions
from repro.core.calibration import (
    CalibrationConfig,
    calibrate_lut,
    calibrate_network,
    collect_activation_samples,
)
from repro.core.lut import LookupTable
from repro.core.quantization import (
    Fp16LookupTable,
    Int32LookupTable,
    quantize_lut_fp16,
    quantize_lut_int32,
    symmetric_scale,
)
from repro.core.scaling import InputScaler, ScaledRsqrt


class TestInputScaler:
    def test_scale_is_power_of_two(self):
        scaler = InputScaler(scale_bits=10)
        assert scaler.scale == 1024.0
        assert scaler.output_scale == pytest.approx(32.0)

    def test_identity_for_exact_rsqrt(self):
        scaler = InputScaler()
        x = np.array([0.001, 0.5, 1.0, 10.0, 900.0])
        np.testing.assert_allclose(scaler.apply(x, functions.rsqrt), functions.rsqrt(x), rtol=1e-12)

    def test_only_small_inputs_are_scaled(self):
        calls = []

        def spy(v):
            calls.append(np.asarray(v).copy())
            return functions.rsqrt(v)

        scaler = InputScaler(scale_bits=10, threshold=1.0)
        scaler.apply(np.array([0.25, 4.0]), spy)
        seen = calls[0]
        assert seen[0] == pytest.approx(256.0)  # 0.25 * 1024
        assert seen[1] == pytest.approx(4.0)

    def test_scaled_rsqrt_wrapper(self, fitted_rsqrt):
        wrapped = ScaledRsqrt(fitted_rsqrt.lut, scaler=InputScaler())
        x = np.array([0.01, 0.1, 2.0, 55.0])
        rel = np.abs(wrapped(x) - functions.rsqrt(x)) / functions.rsqrt(x)
        assert np.all(rel < 0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            InputScaler(scale_bits=-1)
        with pytest.raises(ValueError):
            InputScaler(threshold=0.0)

    @given(st.floats(min_value=1e-4, max_value=0.99))
    @settings(max_examples=30, deadline=None)
    def test_scaling_identity_property(self, x):
        """sqrt(S) * rsqrt(S*x) == rsqrt(x) for the exact function."""
        scaler = InputScaler(scale_bits=10)
        out = scaler.apply(np.array([x]), functions.rsqrt)[0]
        assert out == pytest.approx(functions.rsqrt(np.array([x]))[0], rel=1e-9)


class TestQuantizedLuts:
    def _reference_lut(self):
        return LookupTable(
            breakpoints=[-1.0, 0.0, 1.0],
            slopes=[0.0, 0.5, 1.0, 1.0],
            intercepts=[0.0, 0.5, 0.0, 0.1],
            name="toy",
        )

    def test_symmetric_scale(self):
        assert symmetric_scale(np.array([0.0])) == 1.0
        assert symmetric_scale(np.array([-2.0, 1.0]), num_bits=8) == pytest.approx(2.0 / 127)

    def test_fp16_close_to_fp32(self, fitted_gelu):
        lut16 = quantize_lut_fp16(fitted_gelu.lut)
        x = np.linspace(-5, 5, 400)
        assert np.max(np.abs(lut16(x) - fitted_gelu.lut(x))) < 0.02
        assert isinstance(lut16, Fp16LookupTable)
        assert lut16.metadata["precision"] == "fp16"

    def test_int32_close_to_fp32(self, fitted_gelu):
        lut_q = quantize_lut_int32(fitted_gelu.lut, input_range=(-5, 5))
        x = np.linspace(-5, 5, 400)
        assert np.max(np.abs(lut_q(x) - fitted_gelu.lut(x))) < 1e-3
        assert isinstance(lut_q, Int32LookupTable)
        assert lut_q.num_entries == fitted_gelu.lut.num_entries

    def test_int32_scales_exposed(self):
        lut_q = quantize_lut_int32(self._reference_lut(), input_range=(-2, 2))
        input_scale, slope_scale, output_scale = lut_q.scales
        assert output_scale == pytest.approx(input_scale * slope_scale)

    def test_int32_invalid_range(self):
        with pytest.raises(ValueError, match="input_range"):
            quantize_lut_int32(self._reference_lut(), input_range=(2, 2))

    def test_int32_low_bitwidth_degrades(self):
        lut = self._reference_lut()
        coarse = quantize_lut_int32(lut, input_range=(-2, 2), num_bits=4)
        fine = quantize_lut_int32(lut, input_range=(-2, 2), num_bits=32)
        x = np.linspace(-2, 2, 200)
        assert np.max(np.abs(coarse(x) - lut(x))) >= np.max(np.abs(fine(x) - lut(x)))


class TestCalibration:
    def test_calibration_improves_fit_on_shifted_distribution(self, fitted_rsqrt):
        # The deployed model only ever sees variances between 1 and 16: after
        # calibration the table should be better there than the generic fit.
        rng = np.random.default_rng(0)
        samples = rng.uniform(1.0, 16.0, size=20_000)
        config = CalibrationConfig(epochs=5, learning_rate=1e-3, seed=0)
        calibrated = calibrate_network(fitted_rsqrt.network, functions.rsqrt, samples, config)
        grid = np.linspace(1.0, 16.0, 500)
        before = np.mean(np.abs(fitted_rsqrt.network(grid) - functions.rsqrt(grid)))
        after = np.mean(np.abs(calibrated(grid) - functions.rsqrt(grid)))
        assert after < before

    def test_calibrate_lut_returns_marked_table(self, fitted_rsqrt):
        samples = np.random.default_rng(1).uniform(1.0, 8.0, size=5000)
        lut = calibrate_lut(fitted_rsqrt.network, functions.rsqrt, samples, name="rsqrt")
        assert lut.metadata["calibrated"] is True
        assert lut.metadata["num_calibration_samples"] == 5000

    def test_original_network_untouched(self, fitted_gelu):
        before = fitted_gelu.network.params.first_weight.copy()
        samples = np.random.default_rng(2).uniform(-2, 2, size=2000)
        calibrate_network(fitted_gelu.network, functions.gelu, samples)
        np.testing.assert_allclose(fitted_gelu.network.params.first_weight, before)

    def test_empty_samples_rejected(self, fitted_gelu):
        with pytest.raises(ValueError, match="non-empty"):
            calibrate_network(fitted_gelu.network, functions.gelu, np.array([]))

    def test_collect_activation_samples(self):
        def producer():
            yield np.ones((4, 8))
            yield np.zeros((2, 8))

        samples = collect_activation_samples(producer, max_samples=1000)
        assert samples.size == 48
        assert samples.max() == 1.0 and samples.min() == 0.0

    def test_collect_respects_reservoir_limit(self):
        samples = collect_activation_samples(lambda: [np.arange(1000.0)], max_samples=100)
        assert samples.size == 100

    def test_collect_empty_raises(self):
        with pytest.raises(ValueError, match="no activation samples"):
            collect_activation_samples(lambda: [])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CalibrationConfig(epochs=0)
        with pytest.raises(ValueError):
            CalibrationConfig(loss="huber")
