"""Tests for the composite operators (GELU/Softmax/LayerNorm) and the registry."""

import numpy as np
import pytest

from repro.core import functions
from repro.core.approximators import (
    ExactGelu,
    ExactLayerNorm,
    ExactScalar,
    ExactSoftmax,
    LutGelu,
    LutLayerNorm,
    LutSoftmax,
)
from repro.core.registry import LutRegistry, fit_lut
from repro.core.scaling import InputScaler
from repro.core.training import TrainingConfig


class TestLutGelu:
    def test_accuracy_against_exact(self, fitted_gelu, rng):
        op = LutGelu(fitted_gelu.lut)
        x = rng.normal(0.0, 2.0, size=(16, 32))
        assert np.mean(np.abs(op(x) - functions.gelu(x))) < 0.02

    def test_saturation_outside_training_range(self, fitted_gelu):
        op = LutGelu(fitted_gelu.lut, clip_range=(-5, 5))
        x = np.array([-50.0, -10.0, 10.0, 50.0])
        np.testing.assert_allclose(op(x), [0.0, 0.0, 10.0, 50.0], atol=1e-9)

    def test_no_clipping_mode(self, fitted_gelu):
        op = LutGelu(fitted_gelu.lut, clip_range=None)
        x = np.linspace(-4, 4, 50)
        np.testing.assert_allclose(op(x), fitted_gelu.lut(x))


class TestLutSoftmax:
    def test_rows_approximately_normalised(self, fitted_exp, fitted_reciprocal, rng):
        op = LutSoftmax(fitted_exp.lut, fitted_reciprocal.lut)
        logits = rng.normal(0.0, 3.0, size=(8, 64))
        out = op(logits)
        assert np.all(out >= 0.0)
        # The row sum deviates from 1 by the relative error of the 1/x table
        # (a row-constant factor that downstream LayerNorm largely removes).
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=0.25)

    def test_close_to_exact(self, fitted_exp, fitted_reciprocal, rng):
        op = LutSoftmax(fitted_exp.lut, fitted_reciprocal.lut)
        logits = rng.normal(0.0, 2.0, size=(4, 32))
        reference = functions.softmax(logits)
        assert np.mean(np.abs(op(logits) - reference)) < 0.01

    def test_preserves_argmax(self, fitted_exp, fitted_reciprocal, rng):
        op = LutSoftmax(fitted_exp.lut, fitted_reciprocal.lut)
        logits = rng.normal(0.0, 3.0, size=(32, 16))
        np.testing.assert_array_equal(
            np.argmax(op(logits), axis=-1), np.argmax(functions.softmax(logits), axis=-1)
        )

    def test_axis_argument(self, fitted_exp, fitted_reciprocal, rng):
        op = LutSoftmax(fitted_exp.lut, fitted_reciprocal.lut)
        logits = rng.normal(size=(5, 7))
        np.testing.assert_allclose(op(logits, axis=0).sum(axis=0), 1.0, atol=0.15)

    def test_works_with_exact_scalars(self):
        op = LutSoftmax(ExactScalar(functions.exp), ExactScalar(functions.reciprocal))
        logits = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(op(logits), functions.softmax(logits), rtol=1e-10)


class TestLutLayerNorm:
    def test_close_to_exact_for_moderate_variance(self, fitted_rsqrt, rng):
        op = LutLayerNorm(fitted_rsqrt.lut, scaler=InputScaler())
        x = rng.normal(0.3, 1.5, size=(16, 128))
        assert np.mean(np.abs(op(x) - functions.layer_norm(x))) < 0.05

    def test_input_scaling_helps_small_variance(self, fitted_rsqrt, rng):
        x = rng.normal(0.0, 0.05, size=(16, 128))  # variance ~ 0.0025 << 1
        with_scaling = LutLayerNorm(fitted_rsqrt.lut, scaler=InputScaler())
        without_scaling = LutLayerNorm(fitted_rsqrt.lut, scaler=None)
        reference = functions.layer_norm(x)
        err_with = np.mean(np.abs(with_scaling(x) - reference))
        err_without = np.mean(np.abs(without_scaling(x) - reference))
        assert err_with < err_without

    def test_affine_parameters_passed_through(self, fitted_rsqrt, rng):
        op = LutLayerNorm(fitted_rsqrt.lut, scaler=InputScaler())
        x = rng.normal(size=(4, 32))
        gamma = np.full(32, 2.0)
        beta = np.full(32, 0.5)
        np.testing.assert_allclose(op(x, gamma=gamma, beta=beta), op(x) * 2.0 + 0.5, rtol=1e-9)


class TestExactWrappers:
    def test_exact_ops_match_functions(self, rng):
        x = rng.normal(size=(3, 9))
        np.testing.assert_allclose(ExactGelu()(x), functions.gelu(x))
        np.testing.assert_allclose(ExactSoftmax()(x), functions.softmax(x))
        np.testing.assert_allclose(ExactLayerNorm()(x), functions.layer_norm(x))


class TestRegistry:
    def test_fit_lut_entry_count(self):
        config = TrainingConfig(hidden_size=7, num_samples=2000, epochs=5, num_restarts=1)
        primitive = fit_lut("gelu", num_entries=8, config=config)
        assert primitive.lut.num_entries == 8
        assert primitive.network.hidden_size == 7

    def test_fit_lut_rejects_tiny_tables(self):
        with pytest.raises(ValueError, match="num_entries"):
            fit_lut("gelu", num_entries=1)

    def test_registry_caches(self, fast_registry):
        first = fast_registry.get("gelu", num_entries=16)
        second = fast_registry.get("gelu", num_entries=16)
        assert first is second
        assert "gelu" in fast_registry
        assert len(fast_registry) >= 1

    def test_registry_distinguishes_entry_counts(self):
        config = TrainingConfig(hidden_size=3, num_samples=1000, epochs=3, num_restarts=1)
        registry = LutRegistry(training_config=config)
        a = registry.get("gelu", num_entries=4)
        b = registry.get("gelu", num_entries=6)
        assert a.lut.num_entries == 4
        assert b.lut.num_entries == 6

    def test_register_override(self, fast_registry, fitted_gelu):
        registry = LutRegistry(training_config=fast_registry.training_config)
        registry.register("custom", fitted_gelu, num_entries=16)
        assert registry.get("custom", num_entries=16) is fitted_gelu
        registry.clear()
        assert len(registry) == 0
