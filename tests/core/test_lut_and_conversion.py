"""Tests for the LookupTable and the exact NN -> LUT transformation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.conversion import lut_matches_network, network_to_lut, network_to_lut_eq7
from repro.core.lut import LookupTable
from repro.core.network import OneHiddenReluNet


class TestLookupTable:
    def test_single_segment_is_a_line(self):
        lut = LookupTable(breakpoints=[], slopes=[2.0], intercepts=[1.0])
        x = np.linspace(-3, 3, 7)
        np.testing.assert_allclose(lut(x), 2.0 * x + 1.0)

    def test_segment_selection(self):
        lut = LookupTable(breakpoints=[0.0], slopes=[0.0, 1.0], intercepts=[0.0, 0.0])
        np.testing.assert_allclose(lut(np.array([-1.0, -0.1, 0.1, 2.0])), [0.0, 0.0, 0.1, 2.0])

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="same length"):
            LookupTable(breakpoints=[0.0], slopes=[1.0, 2.0], intercepts=[0.0])
        with pytest.raises(ValueError, match="breakpoints"):
            LookupTable(breakpoints=[0.0, 1.0], slopes=[1.0, 2.0], intercepts=[0.0, 0.0])
        with pytest.raises(ValueError, match="sorted"):
            LookupTable(breakpoints=[1.0, 0.0], slopes=[1.0, 2.0, 3.0], intercepts=[0.0, 0.0, 0.0])

    def test_roundtrip_serialisation(self):
        lut = LookupTable(
            breakpoints=[0.0, 1.0], slopes=[1.0, 2.0, 3.0], intercepts=[0.0, -1.0, 1.0],
            name="demo", metadata={"k": 1},
        )
        clone = LookupTable.from_dict(lut.to_dict())
        x = np.linspace(-2, 3, 50)
        np.testing.assert_allclose(lut(x), clone(x))
        assert clone.name == "demo"
        assert clone.metadata["k"] == 1

    def test_num_entries_and_edges(self):
        lut = LookupTable(breakpoints=[0.0, 2.0], slopes=[1.0, 2.0, 3.0], intercepts=[0.0] * 3)
        assert lut.num_entries == 3
        edges = lut.segment_edges()
        assert edges[0] == -np.inf and edges[-1] == np.inf

    def test_error_helpers(self):
        lut = LookupTable(breakpoints=[], slopes=[1.0], intercepts=[0.0])
        assert lut.max_error(lambda x: x, (-1, 1)) == pytest.approx(0.0)
        assert lut.mean_l1_error(lambda x: x + 1.0, (-1, 1)) == pytest.approx(1.0)


def random_network(rng, hidden=6):
    weights = rng.uniform(0.3, 2.0, size=hidden) * rng.choice([-1.0, 1.0], size=hidden)
    biases = rng.normal(0.0, 2.0, size=hidden)
    second = rng.normal(0.0, 1.0, size=hidden)
    return OneHiddenReluNet.from_arrays(weights, biases, second, output_bias=float(rng.normal()))


class TestConversionEquivalence:
    def test_exact_on_dense_grid(self, rng):
        for _ in range(10):
            net = random_network(rng)
            lut = network_to_lut(net)
            x = np.linspace(-20, 20, 4001)
            np.testing.assert_allclose(lut(x), net(x), rtol=1e-9, atol=1e-9)

    def test_matches_eq7_form(self, rng):
        for _ in range(5):
            net = random_network(rng)
            lut_robust = network_to_lut(net)
            lut_eq7 = network_to_lut_eq7(net)
            x = np.linspace(-15, 15, 1001)
            np.testing.assert_allclose(lut_robust(x), lut_eq7(x), rtol=1e-8, atol=1e-8)

    def test_entry_count(self, rng):
        net = random_network(rng, hidden=15)
        lut = network_to_lut(net)
        # N-1 = 15 neurons with distinct kinks -> N = 16 entries.
        assert lut.num_entries == 16

    def test_degenerate_zero_weight_neuron(self):
        net = OneHiddenReluNet.from_arrays(
            [1.0, 0.0], [0.0, 2.0], [1.0, 3.0], output_bias=0.5
        )
        lut = network_to_lut(net)
        x = np.linspace(-5, 5, 101)
        np.testing.assert_allclose(lut(x), net(x), atol=1e-10)

    def test_eq7_rejects_zero_weight(self):
        net = OneHiddenReluNet.from_arrays([1.0, 0.0], [0.0, 2.0], [1.0, 3.0])
        with pytest.raises(ValueError, match="non-zero"):
            network_to_lut_eq7(net)

    def test_lut_matches_network_helper(self, rng):
        net = random_network(rng)
        lut = network_to_lut(net)
        assert lut_matches_network(net, lut, (-10, 10))
        # Perturb the LUT and the check must fail.
        broken = lut.copy()
        broken.slopes = broken.slopes + 0.5
        assert not lut_matches_network(net, broken, (-10, 10))

    @given(
        weights=hnp.arrays(np.float64, 5, elements=st.floats(0.2, 3.0)),
        signs=hnp.arrays(np.int64, 5, elements=st.sampled_from([-1, 1])),
        biases=hnp.arrays(np.float64, 5, elements=st.floats(-4.0, 4.0)),
        second=hnp.arrays(np.float64, 5, elements=st.floats(-2.0, 2.0)),
        bias_out=st.floats(-1.0, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_equivalence(self, weights, signs, biases, second, bias_out):
        """NN(x) == LUT(x) for arbitrary (non-degenerate) parameters."""
        net = OneHiddenReluNet.from_arrays(
            weights * signs, biases, second, output_bias=bias_out
        )
        lut = network_to_lut(net)
        x = np.linspace(-25, 25, 501)
        np.testing.assert_allclose(lut(x), net(x), rtol=1e-8, atol=1e-8)

    def test_fitted_primitive_equivalence(self, fitted_gelu):
        """The fitted GELU network converts to an exactly-equivalent table."""
        assert lut_matches_network(
            fitted_gelu.network, fitted_gelu.lut, fitted_gelu.input_range
        )
