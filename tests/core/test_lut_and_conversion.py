"""Tests for the LookupTable and the exact NN -> LUT transformation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.conversion import lut_matches_network, network_to_lut, network_to_lut_eq7
from repro.core.lut import (
    LookupTable,
    evaluate_many,
    lut_evaluation_stats,
    reset_lut_evaluation_stats,
)
from repro.core.network import OneHiddenReluNet


class TestLookupTable:
    def test_single_segment_is_a_line(self):
        lut = LookupTable(breakpoints=[], slopes=[2.0], intercepts=[1.0])
        x = np.linspace(-3, 3, 7)
        np.testing.assert_allclose(lut(x), 2.0 * x + 1.0)

    def test_segment_selection(self):
        lut = LookupTable(breakpoints=[0.0], slopes=[0.0, 1.0], intercepts=[0.0, 0.0])
        np.testing.assert_allclose(lut(np.array([-1.0, -0.1, 0.1, 2.0])), [0.0, 0.0, 0.1, 2.0])

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="same length"):
            LookupTable(breakpoints=[0.0], slopes=[1.0, 2.0], intercepts=[0.0])
        with pytest.raises(ValueError, match="breakpoints"):
            LookupTable(breakpoints=[0.0, 1.0], slopes=[1.0, 2.0], intercepts=[0.0, 0.0])
        with pytest.raises(ValueError, match="sorted"):
            LookupTable(breakpoints=[1.0, 0.0], slopes=[1.0, 2.0, 3.0], intercepts=[0.0, 0.0, 0.0])

    def test_roundtrip_serialisation(self):
        lut = LookupTable(
            breakpoints=[0.0, 1.0], slopes=[1.0, 2.0, 3.0], intercepts=[0.0, -1.0, 1.0],
            name="demo", metadata={"k": 1},
        )
        clone = LookupTable.from_dict(lut.to_dict())
        x = np.linspace(-2, 3, 50)
        np.testing.assert_allclose(lut(x), clone(x))
        assert clone.name == "demo"
        assert clone.metadata["k"] == 1

    def test_num_entries_and_edges(self):
        lut = LookupTable(breakpoints=[0.0, 2.0], slopes=[1.0, 2.0, 3.0], intercepts=[0.0] * 3)
        assert lut.num_entries == 3
        edges = lut.segment_edges()
        assert edges[0] == -np.inf and edges[-1] == np.inf

    def test_error_helpers(self):
        lut = LookupTable(breakpoints=[], slopes=[1.0], intercepts=[0.0])
        assert lut.max_error(lambda x: x, (-1, 1)) == pytest.approx(0.0)
        assert lut.mean_l1_error(lambda x: x + 1.0, (-1, 1)) == pytest.approx(1.0)


def random_network(rng, hidden=6):
    weights = rng.uniform(0.3, 2.0, size=hidden) * rng.choice([-1.0, 1.0], size=hidden)
    biases = rng.normal(0.0, 2.0, size=hidden)
    second = rng.normal(0.0, 1.0, size=hidden)
    return OneHiddenReluNet.from_arrays(weights, biases, second, output_bias=float(rng.normal()))


class TestConversionEquivalence:
    def test_exact_on_dense_grid(self, rng):
        for _ in range(10):
            net = random_network(rng)
            lut = network_to_lut(net)
            x = np.linspace(-20, 20, 4001)
            np.testing.assert_allclose(lut(x), net(x), rtol=1e-9, atol=1e-9)

    def test_matches_eq7_form(self, rng):
        for _ in range(5):
            net = random_network(rng)
            lut_robust = network_to_lut(net)
            lut_eq7 = network_to_lut_eq7(net)
            x = np.linspace(-15, 15, 1001)
            np.testing.assert_allclose(lut_robust(x), lut_eq7(x), rtol=1e-8, atol=1e-8)

    def test_entry_count(self, rng):
        net = random_network(rng, hidden=15)
        lut = network_to_lut(net)
        # N-1 = 15 neurons with distinct kinks -> N = 16 entries.
        assert lut.num_entries == 16

    def test_degenerate_zero_weight_neuron(self):
        net = OneHiddenReluNet.from_arrays(
            [1.0, 0.0], [0.0, 2.0], [1.0, 3.0], output_bias=0.5
        )
        lut = network_to_lut(net)
        x = np.linspace(-5, 5, 101)
        np.testing.assert_allclose(lut(x), net(x), atol=1e-10)

    def test_eq7_rejects_zero_weight(self):
        net = OneHiddenReluNet.from_arrays([1.0, 0.0], [0.0, 2.0], [1.0, 3.0])
        with pytest.raises(ValueError, match="non-zero"):
            network_to_lut_eq7(net)

    def test_lut_matches_network_helper(self, rng):
        net = random_network(rng)
        lut = network_to_lut(net)
        assert lut_matches_network(net, lut, (-10, 10))
        # Perturb the LUT and the check must fail.
        broken = lut.copy()
        broken.slopes = broken.slopes + 0.5
        assert not lut_matches_network(net, broken, (-10, 10))

    @given(
        weights=hnp.arrays(np.float64, 5, elements=st.floats(0.2, 3.0)),
        signs=hnp.arrays(np.int64, 5, elements=st.sampled_from([-1, 1])),
        biases=hnp.arrays(np.float64, 5, elements=st.floats(-4.0, 4.0)),
        second=hnp.arrays(np.float64, 5, elements=st.floats(-2.0, 2.0)),
        bias_out=st.floats(-1.0, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_equivalence(self, weights, signs, biases, second, bias_out):
        """NN(x) == LUT(x) for arbitrary (non-degenerate) parameters."""
        net = OneHiddenReluNet.from_arrays(
            weights * signs, biases, second, output_bias=bias_out
        )
        lut = network_to_lut(net)
        x = np.linspace(-25, 25, 501)
        np.testing.assert_allclose(lut(x), net(x), rtol=1e-8, atol=1e-8)

    def test_fitted_primitive_equivalence(self, fitted_gelu):
        """The fitted GELU network converts to an exactly-equivalent table."""
        assert lut_matches_network(
            fitted_gelu.network, fitted_gelu.lut, fitted_gelu.input_range
        )


class TestNonContiguousEvaluate:
    """Strided/transposed inputs take one explicit, counted contiguous copy."""

    @pytest.fixture()
    def lut(self):
        return LookupTable(
            breakpoints=np.array([-1.0, 0.0, 1.5]),
            slopes=np.array([0.0, -0.5, 1.0, 2.0]),
            intercepts=np.array([0.25, 0.0, -0.5, 1.0]),
            name="test",
        )

    def test_strided_matches_contiguous(self, lut):
        base = np.linspace(-3.0, 3.0, 64)
        strided = base[::2]
        assert not strided.flags.c_contiguous or strided.strides == base.strides
        reset_lut_evaluation_stats()
        got = lut.evaluate(base[::2])
        stats = lut_evaluation_stats()
        expected = lut.evaluate(np.ascontiguousarray(base[::2]))
        np.testing.assert_array_equal(got, expected)
        assert stats["evaluations"] == 1
        assert stats["noncontiguous_inputs"] == 1
        assert stats["contiguous_copies"] == 1

    def test_transposed_matches_contiguous(self, lut):
        rng = np.random.default_rng(7)
        base = rng.normal(size=(16, 24))
        transposed = base.T
        assert not transposed.flags.c_contiguous
        reset_lut_evaluation_stats()
        got = lut.evaluate(transposed)
        assert lut_evaluation_stats()["contiguous_copies"] == 1
        np.testing.assert_array_equal(got, lut.evaluate(np.ascontiguousarray(base.T)))
        assert got.shape == transposed.shape

    def test_contiguous_input_is_not_copied(self, lut):
        x = np.linspace(-2.0, 2.0, 33)
        reset_lut_evaluation_stats()
        lut.evaluate(x)
        stats = lut_evaluation_stats()
        assert stats["evaluations"] == 1
        assert stats["noncontiguous_inputs"] == 0
        assert stats["contiguous_copies"] == 0

    def test_strided_input_does_not_mutate_source(self, lut):
        base = np.linspace(-3.0, 3.0, 40)
        backup = base.copy()
        lut.evaluate(base[::2])
        np.testing.assert_array_equal(base, backup)

    def test_out_aliasing_strided_view_counts_without_copy(self, lut):
        buf = np.linspace(-3.0, 3.0, 40)
        view = buf[::2]
        expected = lut.evaluate(view.copy())
        reset_lut_evaluation_stats()
        got = lut.evaluate(view, out=view)
        stats = lut_evaluation_stats()
        assert got is view
        np.testing.assert_array_equal(view, expected)
        # The alias forbids substituting a copy for the caller's buffer, so
        # the strided traversal is counted but no copy is made.
        assert stats["noncontiguous_inputs"] == 1
        assert stats["contiguous_copies"] == 0

    def test_distinct_out_with_strided_input_uses_copy(self, lut):
        base = np.linspace(-3.0, 3.0, 40)
        out = np.empty(20)
        reset_lut_evaluation_stats()
        got = lut.evaluate(base[::2], out=out)
        stats = lut_evaluation_stats()
        assert got is out
        np.testing.assert_array_equal(out, lut.evaluate(base[::2].copy()))
        assert stats["contiguous_copies"] == 1

    def test_evaluate_many_accepts_strided_inputs(self, lut):
        base = np.linspace(-3.0, 3.0, 48)
        reset_lut_evaluation_stats()
        (got,) = evaluate_many([(lut, base[::3], None)])
        np.testing.assert_array_equal(got, lut.evaluate(base[::3].copy()))
        assert lut_evaluation_stats()["contiguous_copies"] == 1

    def test_reset_clears_counters(self, lut):
        lut.evaluate(np.linspace(-1.0, 1.0, 9)[::2])
        assert lut_evaluation_stats()["evaluations"] >= 1
        reset_lut_evaluation_stats()
        assert lut_evaluation_stats() == {
            "evaluations": 0,
            "noncontiguous_inputs": 0,
            "contiguous_copies": 0,
        }
