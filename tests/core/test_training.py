"""Tests for dataset sampling, Adam, initialisation and the fitting pipeline."""

import numpy as np
import pytest

from repro.core import functions
from repro.core.initialization import INIT_SPECS, InitSpec, get_init_spec, initialize_network
from repro.core.training import (
    AdamOptimizer,
    TrainingConfig,
    curvature_anchors,
    fit_network,
    l1_loss,
    l2_loss,
    sample_training_data,
)

FAST = TrainingConfig(
    hidden_size=15, num_samples=4000, batch_size=2048, epochs=10, learning_rate=1e-3,
    seed=0, num_restarts=1,
)


class TestConfigValidation:
    def test_rejects_bad_loss(self):
        with pytest.raises(ValueError, match="loss"):
            TrainingConfig(loss="huber")

    def test_rejects_bad_sampling(self):
        with pytest.raises(ValueError, match="sampling"):
            TrainingConfig(sampling="weird")

    def test_rejects_bad_anchor_strategy(self):
        with pytest.raises(ValueError, match="anchor_strategy"):
            TrainingConfig(anchor_strategy="magic")

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            TrainingConfig(hidden_size=0)
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)


class TestSampling:
    def test_uniform_range(self, rng):
        x, y = sample_training_data(functions.gelu, (-5, 5), 1000, rng)
        assert x.min() >= -5 and x.max() <= 5
        np.testing.assert_allclose(y, functions.gelu(x))

    def test_log_sampling_positive_only(self, rng):
        x, _ = sample_training_data(functions.rsqrt, (0.1, 1024), 1000, rng, sampling="log")
        assert np.all(x >= 0.1) and np.all(x <= 1024)
        # Log sampling concentrates mass at small values.
        assert np.median(x) < 100

    def test_log_sampling_rejects_nonpositive_range(self, rng):
        with pytest.raises(ValueError, match="positive"):
            sample_training_data(functions.rsqrt, (-1, 10), 100, rng, sampling="log")

    def test_neg_log_sampling(self, rng):
        x, _ = sample_training_data(functions.exp, (-256, 0), 1000, rng, sampling="neg_log")
        assert np.all(x <= 0) and np.all(x >= -256)
        assert np.median(x) > -30  # concentrated near zero

    def test_neg_log_rejects_positive_range(self, rng):
        with pytest.raises(ValueError, match="non-positive"):
            sample_training_data(functions.exp, (-1, 2), 100, rng, sampling="neg_log")


class TestLosses:
    def test_l1(self):
        loss, grad = l1_loss(np.array([1.0, -1.0]), np.array([0.0, 0.0]))
        assert loss == pytest.approx(1.0)
        np.testing.assert_allclose(grad, [0.5, -0.5])

    def test_l2(self):
        loss, grad = l2_loss(np.array([2.0]), np.array([0.0]))
        assert loss == pytest.approx(4.0)
        np.testing.assert_allclose(grad, [4.0])


class TestAdam:
    def test_minimises_quadratic(self):
        opt = AdamOptimizer(learning_rate=0.1)
        params = {"w": np.array([5.0, -3.0])}
        for _ in range(500):
            grads = {"w": 2 * params["w"]}
            params = opt.step(params, grads)
        np.testing.assert_allclose(params["w"], 0.0, atol=1e-3)

    def test_rejects_nonpositive_lr(self):
        with pytest.raises(ValueError):
            AdamOptimizer(learning_rate=0.0)


class TestInitialization:
    def test_table1_specs(self):
        assert INIT_SPECS["exp"].weight_sign == "positive"
        assert INIT_SPECS["reciprocal"].weight_sign == "negative"
        assert INIT_SPECS["rsqrt"].bias_sign == "positive"
        assert get_init_spec("unknown-function") == InitSpec()

    def test_sign_constraints_applied(self):
        rng = np.random.default_rng(0)
        net = initialize_network("exp", 8, (-256, 0), rng=rng)
        assert np.all(net.params.first_weight > 0)
        assert np.all(net.params.first_bias > 0)
        net = initialize_network("reciprocal", 8, (1, 1024), rng=rng)
        assert np.all(net.params.first_weight < 0)

    def test_breakpoints_cover_range(self):
        rng = np.random.default_rng(1)
        net = initialize_network("gelu", 15, (-5, 5), rng=rng)
        bps = net.breakpoints()
        assert bps.min() > -5.5 and bps.max() < 5.5

    def test_explicit_anchors(self):
        anchors = np.array([-1.0, 0.0, 1.0])
        net = initialize_network("gelu", 3, (-5, 5), rng=np.random.default_rng(0), anchors=anchors)
        np.testing.assert_allclose(np.sort(net.breakpoints()), anchors, atol=1e-9)

    def test_anchor_length_mismatch(self):
        with pytest.raises(ValueError, match="anchors"):
            initialize_network("gelu", 3, (-5, 5), anchors=np.array([0.0]))

    def test_invalid_spec_value(self):
        with pytest.raises(ValueError, match="weight_sign"):
            InitSpec(weight_sign="sometimes")


class TestCurvatureAnchors:
    def test_quadratic_gives_uniform_anchors(self):
        anchors = curvature_anchors(lambda x: x**2, (-1, 1), 9, grid_points=20_000)
        # Constant curvature -> approximately uniform spacing.
        spacing = np.diff(anchors)
        assert spacing.max() / spacing.min() < 1.5

    def test_reciprocal_concentrates_at_low_end(self):
        anchors = curvature_anchors(lambda x: 1.0 / x, (1, 1024), 15, grid_points=50_000)
        assert np.sum(anchors < 100) >= 8

    def test_sorted_output(self):
        anchors = curvature_anchors(np.exp, (-10, 0), 7)
        assert np.all(np.diff(anchors) > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            curvature_anchors(np.exp, (1, 0), 3)
        with pytest.raises(ValueError):
            curvature_anchors(np.exp, (0, 1), 0)


class TestFitNetwork:
    def test_gelu_fit_quality(self):
        result = fit_network("gelu", config=FAST)
        grid = np.linspace(-5, 5, 500)
        error = np.mean(np.abs(result.network(grid) - functions.gelu(grid)))
        assert error < 0.02
        assert result.function_name == "gelu"
        assert len(result.loss_history) == FAST.epochs

    def test_custom_function_and_range(self):
        result = fit_network(
            "sigmoid",
            config=FAST,
            function=lambda x: 1.0 / (1.0 + np.exp(-x)),
            input_range=(-8.0, 8.0),
        )
        grid = np.linspace(-8, 8, 200)
        error = np.mean(np.abs(result.network(grid) - 1.0 / (1.0 + np.exp(-grid))))
        assert error < 0.03

    def test_deterministic_given_seed(self):
        a = fit_network("gelu", config=FAST)
        b = fit_network("gelu", config=FAST)
        np.testing.assert_allclose(a.network.params.first_weight, b.network.params.first_weight)
        np.testing.assert_allclose(a.network.params.second_weight, b.network.params.second_weight)
