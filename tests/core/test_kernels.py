"""ComputeKernel seam: registry semantics, graceful fallback, op parity.

The NativeKernel's contract is *bitwise* agreement with the NumpyKernel
reference — the compiled fast path must be a pure drop-in, so every parity
test here asserts exact equality (``equal_nan`` where NaN propagation is
part of the contract), not tolerances.  Machines without a working C
toolchain skip the native-only classes; the registry/fallback tests run
everywhere.
"""

import pickle
import warnings

import numpy as np
import pytest

from repro.api import BackendSpec, InferenceSession, build_backend
from repro.core.approximators import LutGelu, LutLayerNorm, LutSoftmax
from repro.core.kernels import (
    KERNEL_NAMES,
    NUMPY_KERNEL,
    NativeKernel,
    NumpyKernel,
    get_kernel,
    kernel_info,
    native_available,
    native_unavailable_reason,
    reset_kernel_fallback_warning,
    resolve_kernel,
    validate_kernel_name,
)
from repro.core.scaling import InputScaler
from repro.transformer import tiny_test_config
from repro.transformer.models import EncoderModel

needs_native = pytest.mark.skipif(
    not native_available(), reason="compiled native kernel unavailable"
)

AVAILABLE_KERNELS = ["numpy"] + (["native"] if native_available() else [])


def eq(a, b):
    return np.array_equal(np.asarray(a), np.asarray(b), equal_nan=True)


class TestRegistry:
    def test_kernel_names(self):
        assert KERNEL_NAMES == ("numpy", "native")
        assert validate_kernel_name("numpy") == "numpy"
        with pytest.raises(ValueError, match="kernel must be one of"):
            validate_kernel_name("cuda")

    def test_get_kernel_numpy_is_singleton(self):
        assert get_kernel("numpy") is NUMPY_KERNEL
        assert resolve_kernel("numpy") is NUMPY_KERNEL
        with pytest.raises(ValueError):
            get_kernel("cuda")

    def test_kernel_info_shape(self):
        info = kernel_info()
        assert info["names"] == list(KERNEL_NAMES)
        assert isinstance(info["native_available"], bool)
        if info["native_available"]:
            assert info["gemm_impl"] in (1, 2)
            assert info["native_unavailable_reason"] is None
        else:
            assert info["native_unavailable_reason"]

    @pytest.mark.parametrize("name", AVAILABLE_KERNELS)
    def test_kernels_pickle_to_singletons(self, name):
        kernel = get_kernel(name)
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone is kernel


class TestFallback:
    @pytest.fixture(autouse=True)
    def _rearm_warning(self):
        reset_kernel_fallback_warning()
        yield
        reset_kernel_fallback_warning()

    def test_disabled_native_falls_back_with_single_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_KERNEL", "0")
        assert not native_available()
        assert "REPRO_NATIVE_KERNEL" in native_unavailable_reason()
        with pytest.warns(RuntimeWarning, match="falling back"):
            kernel = resolve_kernel("native")
        assert isinstance(kernel, NumpyKernel)
        # The warning fires once per process; repeat resolutions are silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_kernel("native") is kernel

    def test_strict_lookup_refuses_instead_of_falling_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_KERNEL", "0")
        with pytest.raises(RuntimeError, match="native kernel unavailable"):
            get_kernel("native")
        with pytest.raises(RuntimeError, match="native kernel unavailable"):
            NativeKernel()

    def test_fallback_engine_results_identical(self, monkeypatch, fast_registry):
        """kernel="native" on a host without it == the numpy engine, bitwise."""
        monkeypatch.setenv("REPRO_NATIVE_KERNEL", "0")
        tokens = np.random.default_rng(0).integers(0, 100, size=(2, 9))
        reference = EncoderModel.initialize(
            tiny_test_config(compute_dtype="float64"), seed=3
        ).forward(tokens, backend=build_backend(
            BackendSpec.nn_lut(), registry=fast_registry
        ))
        with pytest.warns(RuntimeWarning, match="falling back"):
            model = EncoderModel.initialize(
                tiny_test_config(compute_dtype="float64", kernel="native"), seed=3
            )
            backend = build_backend(
                BackendSpec.nn_lut(kernel="native"), registry=fast_registry
            )
        assert backend.kernel is NUMPY_KERNEL
        assert np.array_equal(model.forward(tokens, backend=backend), reference)


@pytest.mark.parametrize("name", AVAILABLE_KERNELS)
class TestPackedQuantizeNonFinite:
    """Satellite gate: the packed quantize kernels reject non-finite input."""

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_quantize_scale_rejects(self, name, bad, dtype):
        kernel = get_kernel(name)
        x = np.array([1.0, bad, -2.0], dtype=dtype)
        with pytest.raises(ValueError, match="non-finite"):
            kernel.quantize_scale(x)

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_quantize_pack_rejects_non_finite_values(self, name, bad, dtype):
        kernel = get_kernel(name)
        x = np.array([0.5, bad, 1.5], dtype=dtype)
        with pytest.raises(ValueError, match="non-finite"):
            kernel.quantize_pack(x, 0.01)

    @pytest.mark.parametrize("scale", [0.0, -1.0, np.nan, np.inf])
    def test_quantize_pack_rejects_bad_scale(self, name, scale):
        kernel = get_kernel(name)
        with pytest.raises(ValueError, match="scale"):
            kernel.quantize_pack(np.ones(4, dtype=np.float32), scale)

    def test_linear_int8_rejects_non_finite_activations(self, name):
        kernel = get_kernel(name)
        w_q = np.random.default_rng(0).integers(-127, 128, (8, 6), dtype=np.int8)
        operand = kernel.pack_weight_int8(w_q)
        x = np.ones((3, 8), dtype=np.float32)
        x[1, 2] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            kernel.linear_int8(x, operand, 0.01, np.float32)


@needs_native
class TestNativeOpParity:
    """Every ComputeKernel op: NativeKernel == NumpyKernel, bitwise."""

    @pytest.fixture(scope="class")
    def native(self):
        return get_kernel("native")

    @pytest.fixture(scope="class")
    def rng_cls(self):
        return np.random.default_rng(42)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_matmul_fp32(self, native, rng_cls, dtype):
        x = rng_cls.normal(size=(7, 12)).astype(dtype)
        w = rng_cls.normal(size=(12, 9)).astype(dtype)
        bias = rng_cls.normal(size=9).astype(dtype)
        assert eq(
            native.matmul_fp32(x, w, dtype, bias=bias),
            NUMPY_KERNEL.matmul_fp32(x, w, dtype, bias=bias),
        )

    @pytest.mark.parametrize("in_dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("out_dtype", [np.float32, np.float64])
    def test_linear_int8(self, native, rng_cls, in_dtype, out_dtype):
        x = rng_cls.normal(size=(2, 11, 16)).astype(in_dtype)
        w_q = rng_cls.integers(-127, 128, size=(16, 10), dtype=np.int8)
        bias = rng_cls.normal(size=10).astype(out_dtype)
        got = native.linear_int8(
            x, native.pack_weight_int8(w_q), 0.013, out_dtype, bias=bias
        )
        want = NUMPY_KERNEL.linear_int8(
            x, NUMPY_KERNEL.pack_weight_int8(w_q), 0.013, out_dtype, bias=bias
        )
        assert got.dtype == want.dtype == out_dtype
        assert eq(got, want)

    def test_linear_int8_empty_batch(self, native, rng_cls):
        w_q = rng_cls.integers(-127, 128, size=(8, 5), dtype=np.int8)
        got = native.linear_int8(
            np.empty((0, 8), dtype=np.float32),
            native.pack_weight_int8(w_q),
            0.1,
            np.float32,
        )
        assert got.shape == (0, 5)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_quantize_scale_and_pack(self, native, rng_cls, dtype):
        x = rng_cls.normal(size=(6, 33)).astype(dtype)
        scale_native = native.quantize_scale(x)
        scale_numpy = NUMPY_KERNEL.quantize_scale(x)
        assert float(scale_native) == float(scale_numpy)
        assert eq(
            native.quantize_pack(x, scale_native),
            NUMPY_KERNEL.quantize_pack(x, scale_numpy),
        )

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_lut_eval(self, native, fast_registry, rng_cls, dtype):
        table = fast_registry.lut("gelu", num_entries=16)
        x = rng_cls.uniform(-8.0, 8.0, size=257).astype(dtype)
        x[3] = np.nan
        assert eq(native.lut_eval(table, x), NUMPY_KERNEL.lut_eval(table, x))
        # strided input and explicit out buffer
        assert eq(
            native.lut_eval(table, x[::2]), NUMPY_KERNEL.lut_eval(table, x[::2])
        )
        out = np.empty_like(x)
        result = native.lut_eval(table, x, out=out)
        assert result is out
        assert eq(out, NUMPY_KERNEL.lut_eval(table, x))

    def test_lut_gelu_and_fused_bias(self, native, fast_registry, rng_cls):
        op = LutGelu(fast_registry.lut("gelu", num_entries=16))
        x = rng_cls.uniform(-12.0, 12.0, size=(9, 65)).astype(np.float32)
        x[0, 0] = np.nan  # NaN propagation is part of the contract
        bias = rng_cls.normal(size=65).astype(np.float32)
        assert eq(native.lut_gelu(op, x.copy()), NUMPY_KERNEL.lut_gelu(op, x.copy()))
        assert eq(
            native.lut_gelu_bias(op, x.copy(), bias),
            NUMPY_KERNEL.lut_gelu_bias(op, x.copy(), bias),
        )

    def test_lut_softmax(self, native, fast_registry, rng_cls):
        op = LutSoftmax(
            fast_registry.lut("exp", num_entries=16),
            fast_registry.lut("reciprocal", num_entries=16),
        )
        x = rng_cls.normal(scale=3.0, size=(2, 3, 8, 8)).astype(np.float32)
        assert eq(
            native.lut_softmax(op, x.copy(), -1),
            NUMPY_KERNEL.lut_softmax(op, x.copy(), -1),
        )

    def test_lut_layernorm(self, native, fast_registry, rng_cls):
        op = LutLayerNorm(
            fast_registry.lut("rsqrt", num_entries=16), scaler=InputScaler()
        )
        x = rng_cls.normal(size=(2, 7, 24)).astype(np.float32)
        gamma = rng_cls.normal(1.0, 0.1, size=24).astype(np.float32)
        beta = rng_cls.normal(0.0, 0.1, size=24).astype(np.float32)
        assert eq(
            native.lut_layernorm(op, x.copy(), gamma, beta),
            NUMPY_KERNEL.lut_layernorm(op, x.copy(), gamma, beta),
        )

    def test_bias_epilogues(self, native, rng_cls):
        x = rng_cls.normal(size=(33, 17)).astype(np.float32)
        x[2, 2] = np.nan
        bias = rng_cls.normal(size=17).astype(np.float32)
        residual = rng_cls.normal(size=(33, 17)).astype(np.float32)
        gamma = rng_cls.normal(1.0, 0.1, size=17).astype(np.float32)
        beta = rng_cls.normal(size=17).astype(np.float32)
        assert eq(
            native.bias_residual(x.copy(), bias, residual),
            NUMPY_KERNEL.bias_residual(x.copy(), bias, residual),
        )
        assert eq(
            native.bias_relu(x.copy(), bias),
            NUMPY_KERNEL.bias_relu(x.copy(), bias),
        )
        assert eq(
            native.affine(x.copy(), gamma, beta),
            NUMPY_KERNEL.affine(x.copy(), gamma, beta),
        )

    def test_threaded_results_bitwise_equal_single_thread(self, fast_registry):
        """Row-block threading must not change a single bit of any output."""
        threaded = NativeKernel(num_threads=4)
        single = NativeKernel(num_threads=1)
        rng = np.random.default_rng(5)
        x = rng.normal(size=(256, 32)).astype(np.float32)
        w_q = rng.integers(-127, 128, size=(32, 24), dtype=np.int8)
        bias = rng.normal(size=24).astype(np.float32)
        assert eq(
            threaded.linear_int8(
                x, threaded.pack_weight_int8(w_q), 0.02, np.float32, bias=bias
            ),
            single.linear_int8(
                x, single.pack_weight_int8(w_q), 0.02, np.float32, bias=bias
            ),
        )
        op = LutGelu(fast_registry.lut("gelu", num_entries=16))
        big = rng.uniform(-8.0, 8.0, size=(256, 48)).astype(np.float32)
        gelu_bias = rng.normal(size=48).astype(np.float32)
        assert eq(
            threaded.lut_gelu_bias(op, big.copy(), gelu_bias),
            single.lut_gelu_bias(op, big.copy(), gelu_bias),
        )


@needs_native
class TestNativeEngineParity:
    """Sessions on the native kernel == numpy-kernel sessions, bitwise."""

    @pytest.mark.parametrize("precision", ["fp32", "int8"])
    @pytest.mark.parametrize("compute_dtype", ["float32", "float64"])
    def test_forward_and_pooled(self, fast_registry, precision, compute_dtype):
        rng = np.random.default_rng(9)
        requests = [rng.integers(0, 100, size=length) for length in (5, 12, 9)]
        sessions = {}
        for kernel in ("numpy", "native"):
            config = tiny_test_config(
                matmul_precision=precision,
                compute_dtype=compute_dtype,
                kernel=kernel,
            )
            model = EncoderModel.initialize(config, seed=3)
            sessions[kernel] = InferenceSession.from_model(
                model, spec=BackendSpec.nn_lut(), registry=fast_registry
            )
        assert sessions["native"].backend.kernel is get_kernel("native")
        assert sessions["native"].spec.kernel == "native"
        assert sessions["numpy"].backend.kernel is None
        for a, b in zip(
            sessions["numpy"].forward(requests),
            sessions["native"].forward(requests),
        ):
            assert np.array_equal(a, b)
        assert np.array_equal(
            sessions["numpy"].pooled(requests),
            sessions["native"].pooled(requests),
        )


class TestCompileHygiene:
    """Build-plumbing contracts: temp-file hygiene + the CFLAGS escape hatch."""

    def test_failed_spawn_leaves_no_temp_files(self, monkeypatch, tmp_path):
        # Regression: when subprocess.run itself raised (missing compiler
        # binary, TimeoutExpired) the mkstemp'd temp .so was never removed —
        # every failed attempt leaked a kernels cache entry.
        from repro.core import kernels as K

        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path))
        with pytest.raises(RuntimeError, match="native kernel compilation failed"):
            K._compile_library("/nonexistent/repro-test-cc", "int repro_probe;")
        assert list(tmp_path.iterdir()) == []

    def test_cflags_reach_the_compile_command_and_failures_stay_clean(
        self, monkeypatch, tmp_path
    ):
        from repro.core import kernels as K

        compiler = K._find_compiler()
        if compiler is None:
            pytest.skip("no C compiler on this machine")
        bogus = "-fdefinitely-not-a-real-flag"
        monkeypatch.setenv("REPRO_KERNEL_CFLAGS", bogus)
        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path))
        with pytest.raises(RuntimeError) as excinfo:
            K._compile_library(compiler, "cflags-probe-source")
        assert bogus in str(excinfo.value)  # the escape hatch reached cc
        assert list(tmp_path.iterdir()) == []  # and the failure left no litter

    def test_extra_cflags_parsing(self, monkeypatch):
        from repro.core.kernels import _extra_cflags

        monkeypatch.delenv("REPRO_KERNEL_CFLAGS", raising=False)
        assert _extra_cflags() == ()
        monkeypatch.setenv("REPRO_KERNEL_CFLAGS", "  -g   -DPROBE=1 ")
        assert _extra_cflags() == ("-g", "-DPROBE=1")
