"""Equivalence tests: fused LUT kernels vs the seed evaluation semantics.

The seed implementations (double float64 cast, ``searchsorted``, un-fused
gathers) are replicated inline here as the reference; the fused
``evaluate(x, out=None)`` kernels must reproduce them bit for bit on float64
inputs and to within 1e-6 on float32 inputs over the training ranges.
"""

import numpy as np
import pytest

from repro.baselines.exponential_lut import exponential_lut_for
from repro.baselines.linear_lut import linear_lut_for
from repro.core import functions
from repro.core.lut import LookupTable, UniformLookupTable, evaluate_many
from repro.core.quantization import (
    quantize_lut_fp16,
    quantize_lut_int32,
    symmetric_scale,
)


def seed_lut_call(lut, x):
    """The seed's ``LookupTable.__call__`` (including its double cast)."""
    x = np.asarray(x, dtype=np.float64)
    idx = np.searchsorted(lut.breakpoints, np.asarray(x, dtype=np.float64), side="right")
    return lut.slopes[idx] * x + lut.intercepts[idx]


def seed_fp16_call(lut16, x):
    x16 = np.asarray(x, dtype=np.float16)
    idx = np.searchsorted(
        lut16.breakpoints.astype(np.float64), x16.astype(np.float64), side="right"
    )
    return (lut16.slopes[idx] * x16 + lut16.intercepts[idx]).astype(np.float64)


def seed_int32_call(lut_q, x):
    xq = np.round(np.asarray(x, dtype=np.float64) / lut_q.scales[0]).astype(np.int64)
    idx = np.searchsorted(lut_q.q_breakpoints, xq, side="right")
    acc = lut_q.q_slopes[idx] * xq + lut_q.q_intercepts[idx]
    return acc.astype(np.float64) * lut_q.scales[2]


def random_table(rng, num_entries=16, scale=1.0):
    return LookupTable(
        breakpoints=np.sort(rng.normal(size=num_entries - 1)) * scale,
        slopes=rng.normal(size=num_entries),
        intercepts=rng.normal(size=num_entries),
    )


EDGE_INPUTS = [
    np.array([]),  # empty
    np.array(0.25),  # scalar (0-d)
    np.array([0.0]),
    np.linspace(-50.0, 50.0, 100_003),  # large, beyond the table range
]


class TestFusedFloat64BitCompatibility:
    """On float64 inputs the fused kernel must equal the seed path exactly."""

    @pytest.mark.parametrize("case", range(4))
    def test_random_tables(self, rng, case):
        lut = random_table(rng, scale=10.0**case)
        span = np.abs(lut.breakpoints).max() + 1
        x = np.concatenate(
            [
                rng.uniform(-2 * span, 2 * span, 20_000),
                lut.breakpoints,
                np.nextafter(lut.breakpoints, -np.inf),
                np.nextafter(lut.breakpoints, np.inf),
            ]
        )
        assert np.array_equal(lut(x), seed_lut_call(lut, x))
        assert np.array_equal(lut.evaluate(x), seed_lut_call(lut, x))

    @pytest.mark.parametrize("x", EDGE_INPUTS, ids=["empty", "scalar", "one", "large"])
    def test_edge_inputs(self, rng, x):
        lut = random_table(rng)
        result = lut(x)
        assert result.shape == np.shape(x)
        assert result.dtype == np.float64
        assert np.array_equal(result, seed_lut_call(lut, x))

    def test_fitted_primitives(self, fast_registry):
        for name in ("gelu", "exp", "reciprocal", "rsqrt"):
            lut = fast_registry.lut(name, num_entries=16)
            low, high = lut.metadata["input_range"]
            grid = np.linspace(low, high, 50_001)
            assert np.array_equal(lut(grid), seed_lut_call(lut, grid))

    def test_segment_index_matches_searchsorted(self, rng):
        lut = random_table(rng)
        x = rng.uniform(-3, 3, 10_000)
        assert np.array_equal(
            lut.segment_index(x), np.searchsorted(lut.breakpoints, x, side="right")
        )


class TestFusedFloat32:
    """Float32 inputs stay float32 and match the seed path to 1e-6 on-range."""

    def test_fitted_primitives_within_tolerance(self, fast_registry):
        for name in ("gelu", "exp", "reciprocal", "rsqrt"):
            lut = fast_registry.lut(name, num_entries=16)
            low, high = lut.metadata["input_range"]
            grid = np.linspace(low, high, 50_001)
            fused32 = lut.evaluate(grid.astype(np.float32))
            assert fused32.dtype == np.float32
            assert np.max(np.abs(fused32 - seed_lut_call(lut, grid))) < 1e-6

    def test_float32_index_matches_float32_searchsorted(self, rng):
        lut = random_table(rng)
        x32 = np.concatenate(
            [rng.uniform(-3, 3, 20_000), lut.breakpoints, [np.pi, -np.pi]]
        ).astype(np.float32)
        bp32 = lut.breakpoints.astype(np.float32)
        assert np.array_equal(
            lut.segment_index(x32), np.searchsorted(bp32, x32, side="right")
        )

    def test_out_buffer_and_aliasing(self, rng):
        lut = random_table(rng)
        x = rng.normal(size=1000).astype(np.float32)
        expected = lut.evaluate(x)
        out = np.empty_like(x)
        assert lut.evaluate(x, out=out) is out
        assert np.array_equal(out, expected)
        buf = x.copy()
        assert lut.evaluate(buf, out=buf) is buf  # in-place chains are allowed
        assert np.array_equal(buf, expected)

    def test_out_shape_dtype_validated(self, rng):
        lut = random_table(rng)
        x = rng.normal(size=8).astype(np.float32)
        with pytest.raises(ValueError, match="out must match"):
            lut.evaluate(x, out=np.empty(7, dtype=np.float32))
        with pytest.raises(ValueError, match="out must match"):
            lut.evaluate(x, out=np.empty(8, dtype=np.float64))


class TestPrecisionVariants:
    """FP16/INT32 fused kernels against their seed implementations."""

    @pytest.mark.parametrize("x", EDGE_INPUTS, ids=["empty", "scalar", "one", "large"])
    def test_fp16_bit_compatible(self, rng, x):
        lut16 = quantize_lut_fp16(random_table(rng))
        assert np.array_equal(lut16(x), seed_fp16_call(lut16, x))

    @pytest.mark.parametrize("x", EDGE_INPUTS, ids=["empty", "scalar", "one", "large"])
    def test_int32_bit_compatible(self, rng, x):
        lut_q = quantize_lut_int32(random_table(rng), input_range=(-5, 5))
        assert np.array_equal(lut_q(x), seed_int32_call(lut_q, x))

    def test_call_preserves_floating_dtype(self, rng, fitted_gelu):
        # Regression: __call__ force-cast through float64, so the fp32 engine
        # silently upcast wherever a backend reached a reduced-precision
        # table via __call__ instead of evaluate().
        x32 = rng.uniform(-4, 4, size=128).astype(np.float32)
        lut16 = quantize_lut_fp16(fitted_gelu.lut)
        lut_q = quantize_lut_int32(fitted_gelu.lut, input_range=(-5, 5))
        for variant in (lut16, lut_q):
            called = variant(x32)
            assert called.dtype == np.float32
            assert np.array_equal(called, variant.evaluate(x32))
            assert variant(x32.astype(np.float64)).dtype == np.float64
            # Non-float input still promotes to float64 once.
            assert variant(np.arange(3)).dtype == np.float64

    def test_fp16_int32_float32_inputs(self, rng, fitted_gelu):
        x = rng.uniform(-5, 5, 5000)
        lut16 = quantize_lut_fp16(fitted_gelu.lut)
        lut_q = quantize_lut_int32(fitted_gelu.lut, input_range=(-5, 5))
        for variant, seed_fn, tol in (
            (lut16, seed_fp16_call, 1e-2),  # fp16 resolution
            (lut_q, seed_int32_call, 1e-5),  # float32 activation rounding
        ):
            fused32 = variant.evaluate(x.astype(np.float32))
            assert fused32.dtype == np.float32
            assert np.max(np.abs(fused32 - seed_fn(variant, x))) < tol


class TestUniformLookupTable:
    def test_linear_baseline_is_uniform(self):
        lut = linear_lut_for("gelu", num_entries=16)
        assert isinstance(lut, UniformLookupTable)
        assert lut.metadata["mode"] == "linear"

    def test_exponential_baseline_is_not(self):
        lut = exponential_lut_for("gelu", num_entries=16)
        assert not isinstance(lut, UniformLookupTable)

    def test_o1_index_matches_searchsorted_including_breakpoints(self, rng):
        lut = linear_lut_for("reciprocal", num_entries=16)
        x = np.concatenate(
            [
                rng.uniform(0.5, 1100, 50_000),
                lut.breakpoints,
                np.nextafter(lut.breakpoints, -np.inf),
                np.nextafter(lut.breakpoints, np.inf),
            ]
        )
        assert np.array_equal(
            lut.segment_index(x), np.searchsorted(lut.breakpoints, x, side="right")
        )
        assert np.array_equal(lut(x), seed_lut_call(lut, x))

    def test_rejects_non_uniform_grid(self):
        with pytest.raises(ValueError, match="equally-spaced"):
            UniformLookupTable(
                breakpoints=[0.0, 1.0, 3.0],
                slopes=[1.0] * 4,
                intercepts=[0.0] * 4,
            )

    def test_copy_preserves_type(self):
        lut = linear_lut_for("gelu", num_entries=8)
        assert isinstance(lut.copy(), UniformLookupTable)
        assert isinstance(lut.with_metadata(tag=1), UniformLookupTable)


class TestBucketedSearchRobustness:
    def test_duplicate_breakpoints_fall_back_to_searchsorted(self, rng):
        bp = np.array([-1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 3.0])
        lut = LookupTable(
            breakpoints=bp, slopes=rng.normal(size=8), intercepts=rng.normal(size=8)
        )
        x = rng.uniform(-2, 4, 10_000)
        assert np.array_equal(
            lut.segment_index(x), np.searchsorted(bp, x, side="right")
        )
        assert lut._buckets is False

    def test_invalidate_after_in_place_mutation(self, rng):
        lut = random_table(rng)
        x32 = rng.normal(size=100).astype(np.float32)
        stale = lut.evaluate(x32).copy()
        lut.slopes[...] = lut.slopes + 1.0
        lut.invalidate()
        refreshed = lut.evaluate(x32)
        assert not np.array_equal(stale, refreshed)
        assert np.allclose(refreshed - stale, x32, atol=1e-4)

    def test_input_scaler_promotes_float16_and_keeps_callables_pure(self, fitted_rsqrt):
        from repro.core.scaling import InputScaler

        scaler = InputScaler()
        x16 = np.array([0.5, 2.0, 100.0], dtype=np.float16)
        result = scaler.apply(x16, fitted_rsqrt.lut)  # must not raise
        assert result.dtype == np.float64
        # plain-callable results must not be mutated in place
        cached = functions.rsqrt(np.array([0.25, 4.0]) * 1.0)

        def reusing_approx(v):
            return cached

        scaler.apply(np.array([0.25, 4.0]), reusing_approx)
        assert np.array_equal(cached, functions.rsqrt(np.array([0.25, 4.0])))

    def test_rebinding_parameters_invalidates_caches(self, rng):
        lut = random_table(rng)
        x32 = rng.normal(size=100).astype(np.float32)
        lut.evaluate(x32)  # warm the per-dtype parameter cache
        lut.slopes = lut.slopes + 1.0
        lut.intercepts = lut.intercepts.copy()
        fresh = LookupTable(
            breakpoints=lut.breakpoints.copy(),
            slopes=lut.slopes.copy(),
            intercepts=lut.intercepts.copy(),
        )
        assert np.array_equal(lut.evaluate(x32), fresh.evaluate(x32))


class TestEvaluateMany:
    def test_chain_with_buffer_reuse(self, rng, fitted_exp, fitted_reciprocal):
        x = rng.uniform(-10, 0, size=(4, 64)).astype(np.float32)
        buf = x.copy()
        exps, inv = evaluate_many(
            [
                (fitted_exp.lut, buf, buf),
                (fitted_reciprocal.lut, lambda done: np.sum(done[0], axis=-1), None),
            ]
        )
        assert exps is buf
        assert np.allclose(exps, fitted_exp.lut(x), atol=1e-5)
        assert inv.shape == (4,)

    def test_plain_callable_fallback(self, rng):
        x = rng.normal(size=16)
        out = np.empty_like(x)
        (result,) = evaluate_many([(functions.gelu, x, out)])
        assert result is out
        assert np.array_equal(out, functions.gelu(x))


class TestErrorHelpersAndScales:
    def test_error_helpers_share_grid(self, rng):
        lut = LookupTable(breakpoints=[], slopes=[1.0], intercepts=[0.0])
        assert lut.max_error(lambda v: v, (-1, 1)) == pytest.approx(0.0)
        assert lut.mean_l1_error(lambda v: v + 2.0, (-1, 1)) == pytest.approx(2.0)
        # max >= mean for any function, by construction on the shared grid
        lut2 = random_table(rng)
        f = functions.gelu
        assert lut2.max_error(f, (-5, 5)) >= lut2.mean_l1_error(f, (-5, 5))

    def test_symmetric_scale_rejects_non_finite(self):
        with pytest.raises(ValueError, match="non-finite"):
            symmetric_scale(np.array([1.0, np.nan]))
        with pytest.raises(ValueError, match="non-finite"):
            symmetric_scale(np.array([np.inf]))
