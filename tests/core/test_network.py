"""Tests for the one-hidden-layer ReLU network and its analytic gradients."""

import numpy as np
import pytest

from repro.core.network import NetworkParameters, OneHiddenReluNet


def make_net(n, b, m, c=0.0):
    return OneHiddenReluNet.from_arrays(n, b, m, output_bias=c)


class TestNetworkParameters:
    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="same length"):
            NetworkParameters(first_weight=[1.0, 2.0], first_bias=[0.0], second_weight=[1.0, 1.0])

    def test_hidden_size(self):
        params = NetworkParameters([1.0, -1.0, 2.0], [0.0, 1.0, -1.0], [1.0, 1.0, 1.0])
        assert params.hidden_size == 3

    def test_copy_is_independent(self):
        params = NetworkParameters([1.0], [0.0], [1.0])
        clone = params.copy()
        clone.first_weight[0] = 99.0
        assert params.first_weight[0] == 1.0


class TestForward:
    def test_single_relu(self):
        net = make_net([1.0], [0.0], [1.0])
        x = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
        np.testing.assert_allclose(net(x), np.maximum(x, 0.0))

    def test_output_bias(self):
        net = make_net([1.0], [0.0], [1.0], c=3.0)
        assert net(np.array([-5.0]))[0] == pytest.approx(3.0)

    def test_shape_preserved(self, rng):
        net = make_net([1.0, -0.5], [0.2, 0.3], [1.0, 2.0])
        x = rng.normal(size=(3, 4, 5))
        assert net(x).shape == (3, 4, 5)

    def test_piecewise_linear_between_breakpoints(self):
        net = make_net([1.0, 1.0], [-1.0, -2.0], [1.0, 1.0])
        # Between the kinks at 1 and 2 the function must be exactly linear.
        x = np.linspace(1.01, 1.99, 50)
        y = net(x)
        slopes = np.diff(y) / np.diff(x)
        np.testing.assert_allclose(slopes, slopes[0], rtol=1e-9)

    def test_breakpoints_sorted_and_skip_zero_weight(self):
        net = make_net([2.0, 0.0, -1.0], [-4.0, 1.0, 3.0], [1.0, 1.0, 1.0])
        bps = net.breakpoints()
        # neuron 0: kink at 2.0; neuron 1: no kink (zero weight); neuron 2: kink at 3.0
        np.testing.assert_allclose(bps, [2.0, 3.0])


class TestGradients:
    def _numeric_grad(self, net, x, param_name, index, eps=1e-6):
        def loss_of(net_):
            pred = net_.forward(x)
            return float(np.sum(0.5 * pred**2))

        plus = net.copy()
        arr = getattr(plus.params, param_name)
        if param_name == "output_bias":
            plus.params.output_bias += eps
        else:
            arr = arr.copy()
            arr[index] += eps
            setattr(plus.params, param_name, arr)
        minus = net.copy()
        arr = getattr(minus.params, param_name)
        if param_name == "output_bias":
            minus.params.output_bias -= eps
        else:
            arr = arr.copy()
            arr[index] -= eps
            setattr(minus.params, param_name, arr)
        return (loss_of(plus) - loss_of(minus)) / (2 * eps)

    @pytest.mark.parametrize("param_name", ["first_weight", "first_bias", "second_weight"])
    def test_matches_finite_differences(self, rng, param_name):
        net = make_net(
            rng.normal(size=4), rng.normal(size=4), rng.normal(size=4), c=0.3
        )
        x = rng.normal(size=64)
        pred = net.forward(x)
        grads = net.gradients(x, grad_output=pred)  # dL/dy = y for L = 0.5 y^2
        for index in range(4):
            numeric = self._numeric_grad(net, x, param_name, index)
            assert grads[param_name][index] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_output_bias_gradient(self, rng):
        net = make_net(rng.normal(size=3), rng.normal(size=3), rng.normal(size=3), c=0.1)
        x = rng.normal(size=32)
        pred = net.forward(x)
        grads = net.gradients(x, grad_output=pred)
        numeric = self._numeric_grad(net, x, "output_bias", 0)
        assert grads["output_bias"][0] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_grad_shape_mismatch_raises(self, rng):
        net = make_net([1.0], [0.0], [1.0])
        with pytest.raises(ValueError, match="must match input shape"):
            net.gradients(np.zeros(4), np.zeros(5))
