"""Equivalence tests: cached-quantized Linear vs the seed per-call path.

The seed behaviour (``matmul_with_precision`` re-deriving the weight operand
on every call) is still available via ``cache_weights=False``; the cached
path must reproduce it exactly in float64 for all three precisions, and the
float32 engine must stay within float32 rounding of it.
"""

import numpy as np
import pytest

from repro.core.kernels import native_available
from repro.quant.fixed_point import compute_scale, quantize, quantized_matmul
from repro.transformer import (
    CachedQuantizedLinear,
    Linear,
    TransformerConfig,
    exact_backend,
    matmul_with_precision,
    nn_lut_backend,
    tiny_test_config,
)
from repro.transformer.models import EncoderModel

PRECISIONS = ("fp32", "fp16", "int8")

#: Both ComputeKernels; the native one skips on hosts without a C toolchain.
KERNELS = (
    "numpy",
    pytest.param(
        "native",
        marks=pytest.mark.skipif(
            not native_available(), reason="compiled native kernel unavailable"
        ),
    ),
)


def seed_linear_call(layer, x):
    """The seed ``Linear.__call__``: per-call weight preparation."""
    return matmul_with_precision(x, layer.weight, layer.precision) + layer.bias


@pytest.fixture()
def layer_and_inputs(rng):
    layer = Linear.initialize(24, 16, rng)
    x = rng.normal(size=(6, 5, 24))
    return layer, x


class TestCachedLinearBitCompatibility:
    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_float64_engine_matches_seed_exactly(self, layer_and_inputs, precision):
        layer, x = layer_and_inputs
        layer.precision = precision
        assert np.array_equal(layer(x), seed_linear_call(layer, x))

    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_cache_disabled_equals_cache_enabled(self, rng, precision):
        cached = Linear.initialize(16, 8, rng, precision=precision)
        uncached = Linear(
            weight=cached.weight,
            bias=cached.bias,
            precision=precision,
            cache_weights=False,
        )
        x = rng.normal(size=(32, 16))
        first = cached(x)  # populates the cache
        second = cached(x)  # served from the cache
        assert np.array_equal(first, second)
        assert np.array_equal(first, uncached(x))

    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_float32_engine_close_to_seed(self, rng, precision):
        layer = Linear.initialize(24, 16, rng, precision=precision, compute_dtype="float32")
        x = rng.normal(size=(6, 24))
        fast = layer(x.astype(np.float32))
        assert fast.dtype == np.float32
        reference = seed_linear_call(layer, x)
        # int8 additionally quantises activations, whose float32 rounding can
        # flip an integer level; fp paths see only float32 arithmetic noise.
        tol = 5e-2 if precision == "int8" else 1e-4
        assert np.max(np.abs(fast - reference)) < tol

    def test_empty_and_large_batches(self, rng):
        layer = Linear.initialize(8, 4, rng, precision="int8")
        empty = np.empty((0, 8))
        assert layer(empty).shape == (0, 4)
        large = rng.normal(size=(4096, 8))
        assert np.array_equal(layer(large), seed_linear_call(layer, large))


class TestCacheLifecycle:
    def test_weight_operand_prepared_once(self, rng, monkeypatch):
        layer = Linear.initialize(8, 8, rng, precision="int8")
        calls = []
        import repro.transformer.layers as layers_module

        original = layers_module.quantize

        def counting_quantize(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(layers_module, "quantize", counting_quantize)
        x = rng.normal(size=(4, 8))
        layer(x)
        layer(x)
        layer(x)
        assert len(calls) == 1  # the weight tensor, quantised exactly once

    def test_invalidate_after_in_place_weight_edit(self, rng):
        layer = Linear.initialize(8, 8, rng, precision="int8")
        x = rng.normal(size=(4, 8))
        before = layer(x)
        layer.weight[...] = layer.weight * 2.0  # in-place: cache goes stale
        assert np.array_equal(layer(x), before)  # stale by design...
        layer.invalidate()  # ...until the calibration flow invalidates
        assert np.array_equal(layer(x), seed_linear_call(layer, x))

    def test_rebinding_weight_invalidates_automatically(self, rng):
        layer = Linear.initialize(8, 8, rng, precision="int8")
        x = rng.normal(size=(4, 8))
        layer(x)
        layer.weight = np.asarray(layer.weight * 2.0)
        assert np.array_equal(layer(x), seed_linear_call(layer, x))

    def test_rebinding_bias_invalidates_automatically(self, rng):
        layer = Linear.initialize(8, 8, rng, compute_dtype="float32")
        x = rng.normal(size=(4, 8)).astype(np.float32)
        before = layer(x)
        layer.bias = np.full(8, 100.0)
        after = layer(x)
        assert not np.array_equal(before, after)
        assert np.allclose(after - before, 100.0, atol=1e-3)

    def test_precision_switch_uses_fresh_operand(self, rng):
        layer = Linear.initialize(16, 16, rng)
        x = rng.normal(size=(4, 16))
        fp32 = layer(x)
        layer.precision = "fp16"
        fp16 = layer(x)
        layer.precision = "int8"
        int8 = layer(x)
        assert np.max(np.abs(fp16 - fp32)) < 0.05
        assert np.max(np.abs(int8 - fp32)) < 0.2

    def test_cached_quantized_linear_alias(self, rng):
        layer = CachedQuantizedLinear.initialize(8, 4, rng, precision="int8")
        assert isinstance(layer, Linear)
        assert layer.cache_weights
        x = rng.normal(size=(3, 8))
        assert np.array_equal(layer(x), seed_linear_call(layer, x))

    def test_compute_dtype_validation(self, rng):
        with pytest.raises(ValueError, match="compute_dtype"):
            Linear.initialize(4, 4, rng, compute_dtype="float16")
        with pytest.raises(ValueError, match="compute_dtype"):
            TransformerConfig(compute_dtype="bf16")


class TestQuantizeNonFinite:
    def test_compute_scale_rejects_nan_and_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            compute_scale(np.array([1.0, np.nan]))
        with pytest.raises(ValueError, match="non-finite"):
            compute_scale(np.array([-np.inf, 2.0]))

    def test_quantize_rejects_non_finite_with_explicit_scale(self):
        with pytest.raises(ValueError, match="non-finite"):
            quantize(np.array([1.0, np.inf]), scale=0.5)
        with pytest.raises(ValueError, match="non-finite"):
            quantize(np.array([np.nan]), scale=0.5)
        with pytest.raises(ValueError, match="non-finite"):
            quantize(np.array([1.0, -np.inf]), scale=0.5)

    def test_quantize_rejects_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            quantize(np.ones(3), scale=0.0)
        with pytest.raises(ValueError, match="scale"):
            quantize(np.ones(3), scale=np.nan)

    def test_known_scale_skips_reduction(self, rng, monkeypatch):
        import repro.quant.fixed_point as fp

        def failing_compute_scale(*args, **kwargs):  # pragma: no cover
            raise AssertionError("compute_scale must not run when scale is given")

        monkeypatch.setattr(fp, "compute_scale", failing_compute_scale)
        values = rng.normal(size=64)
        q = fp.quantize(values, scale=0.05)
        assert q.scale == 0.05

    def test_quantized_matmul_with_prequantized_weights(self, rng):
        a = rng.normal(size=(8, 16))
        w = rng.normal(size=(16, 4))
        w_q = quantize(w, num_bits=8)
        assert np.array_equal(
            quantized_matmul(a, w), quantized_matmul(a, weights_q=w_q)
        )
        with pytest.raises(ValueError, match="weights"):
            quantized_matmul(a)


class TestEngineEndToEnd:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_float64_engine_reproduces_seed_forward(self, fast_registry, kernel):
        """Cached float64 model == uncached float64 model, bit for bit."""
        config = tiny_test_config(compute_dtype="float64", kernel=kernel)
        cached = EncoderModel.initialize(config, seed=3)
        uncached = EncoderModel.initialize(config, seed=3)
        for layer in uncached.encoder.layers:
            for linear in (
                layer.attention.query,
                layer.attention.key,
                layer.attention.value,
                layer.attention.output,
                layer.ffn_in,
                layer.ffn_out,
            ):
                linear.cache_weights = False
        uncached.pooler.cache_weights = False
        tokens = np.random.default_rng(0).integers(0, config.vocab_size, size=(2, 12))
        backend = nn_lut_backend(registry=fast_registry)
        assert np.array_equal(
            cached.forward(tokens, backend=backend),
            uncached.forward(tokens, backend=backend),
        )

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_float32_engine_close_to_float64(self, fast_registry, kernel):
        ref = EncoderModel.initialize(tiny_test_config(compute_dtype="float64"), seed=5)
        fast = EncoderModel.initialize(
            tiny_test_config(compute_dtype="float32", kernel=kernel), seed=5
        )
        tokens = np.random.default_rng(1).integers(0, 100, size=(2, 10))
        backend = nn_lut_backend(registry=fast_registry)
        a = ref.forward(tokens, backend=backend)
        b = fast.forward(tokens, backend=backend)
        assert b.dtype == np.float32
        assert np.max(np.abs(a - b)) < 1e-4

    def test_exact_backend_unchanged_semantics(self):
        model = EncoderModel.initialize(tiny_test_config(), seed=2)
        tokens = np.random.default_rng(2).integers(0, 100, size=(2, 8))
        hidden = model.forward(tokens, backend=exact_backend())
        assert hidden.shape == (2, 8, model.config.hidden_size)
        assert np.all(np.isfinite(hidden))
