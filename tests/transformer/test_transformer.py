"""Tests for the numpy Transformer substrate and the pluggable backends."""

import numpy as np
import pytest

from repro.core import functions
from repro.transformer import (
    Embedding,
    EncoderModel,
    Linear,
    MobileBertLikeModel,
    MultiHeadSelfAttention,
    NormParameters,
    RobertaLikeModel,
    TransformerConfig,
    TransformerEncoder,
    backend_from_luts,
    exact_backend,
    ibert_backend,
    linear_lut_backend,
    matmul_with_precision,
    nn_lut_backend,
    tiny_test_config,
)
from repro.transformer.heads import ClassificationHead, RegressionHead, SpanHead


class TestConfig:
    def test_head_dim(self):
        config = tiny_test_config()
        assert config.head_dim * config.num_heads == config.hidden_size

    def test_validation(self):
        with pytest.raises(ValueError, match="divisible"):
            TransformerConfig(hidden_size=30, num_heads=4)
        with pytest.raises(ValueError, match="activation"):
            TransformerConfig(activation="swish")
        with pytest.raises(ValueError, match="matmul_precision"):
            TransformerConfig(matmul_precision="int4")


class TestLayers:
    def test_linear_shapes(self, rng):
        layer = Linear.initialize(8, 4, rng)
        out = layer(rng.normal(size=(3, 5, 8)))
        assert out.shape == (3, 5, 4)

    def test_linear_precisions_agree_roughly(self, rng):
        layer = Linear.initialize(16, 16, rng)
        x = rng.normal(size=(4, 16))
        fp32 = layer(x)
        layer.precision = "fp16"
        fp16 = layer(x)
        layer.precision = "int8"
        int8 = layer(x)
        assert np.max(np.abs(fp16 - fp32)) < 0.05
        assert np.max(np.abs(int8 - fp32)) < 0.2

    def test_matmul_precision_rejects_unknown(self, rng):
        with pytest.raises(ValueError):
            matmul_with_precision(rng.normal(size=(2, 2)), rng.normal(size=(2, 2)), "bf16")

    def test_embedding_lookup(self, rng):
        emb = Embedding.initialize(vocab_size=50, max_sequence_length=16, hidden_size=8, rng=rng)
        out = emb(np.array([[0, 1, 2], [3, 4, 5]]))
        assert out.shape == (2, 3, 8)

    def test_embedding_rejects_out_of_range(self, rng):
        emb = Embedding.initialize(vocab_size=10, max_sequence_length=4, hidden_size=8, rng=rng)
        with pytest.raises(ValueError, match="vocabulary"):
            emb(np.array([[11]]))
        with pytest.raises(ValueError, match="sequence length"):
            emb(np.zeros((1, 9), dtype=int))

    def test_norm_parameters_affine(self, rng):
        params = NormParameters.initialize(4)
        np.testing.assert_allclose(params.apply_affine(np.ones((2, 4))), np.ones((2, 4)))


class TestAttentionAndEncoder:
    def test_attention_output_shape(self, rng):
        config = tiny_test_config()
        attn = MultiHeadSelfAttention.initialize(config, rng)
        x = rng.normal(size=(2, 8, config.hidden_size))
        out = attn(x, exact_backend())
        assert out.shape == x.shape

    def test_attention_mask_blocks_padding(self, rng):
        config = tiny_test_config()
        attn = MultiHeadSelfAttention.initialize(config, rng)
        x = rng.normal(size=(1, 6, config.hidden_size))
        mask = np.array([[1, 1, 1, 0, 0, 0]])
        masked = attn(x, exact_backend(), attention_mask=mask)
        # Changing the padded tokens must not change the unmasked outputs.
        x2 = x.copy()
        x2[0, 3:] += 10.0
        masked2 = attn(x2, exact_backend(), attention_mask=mask)
        np.testing.assert_allclose(masked[0, :3], masked2[0, :3], atol=1e-8)

    def test_encoder_stack_runs(self, rng):
        config = tiny_test_config()
        encoder = TransformerEncoder.initialize(config, rng)
        x = rng.normal(size=(2, 8, config.hidden_size))
        out = encoder(x, exact_backend())
        assert out.shape == x.shape
        assert encoder.num_layers == config.num_layers
        assert encoder.num_parameters() > 0


class TestModels:
    def test_roberta_like_forward_and_pooled(self):
        model = RobertaLikeModel.build(seed=0, num_layers=2, hidden_size=32, num_heads=2,
                                       intermediate_size=64, vocab_size=200)
        tokens = np.random.default_rng(0).integers(0, 200, size=(4, 16))
        hidden = model.forward(tokens)
        pooled = model.pooled(tokens)
        assert hidden.shape == (4, 16, 32)
        assert pooled.shape == (4, 32)
        assert model.num_parameters() > 0

    def test_deterministic_given_seed(self):
        a = RobertaLikeModel.build(seed=7, num_layers=1, hidden_size=32, num_heads=2,
                                   intermediate_size=64, vocab_size=100)
        b = RobertaLikeModel.build(seed=7, num_layers=1, hidden_size=32, num_heads=2,
                                   intermediate_size=64, vocab_size=100)
        tokens = np.random.default_rng(1).integers(0, 100, size=(2, 8))
        np.testing.assert_allclose(a.pooled(tokens), b.pooled(tokens))

    def test_mobilebert_like_ignores_gelu_and_layernorm_backends(self):
        """Softmax is MobileBERT's only transcendental op: replacing GELU and
        LayerNorm must not change its output at all."""
        model = MobileBertLikeModel.build(seed=0, num_layers=2, hidden_size=32, num_heads=2,
                                          intermediate_size=32, vocab_size=300)
        tokens = np.random.default_rng(2).integers(0, 300, size=(2, 12))
        exact = model.forward(tokens, backend=exact_backend())
        approx = model.forward(
            tokens, backend=linear_lut_backend(replace=["gelu", "layernorm"])
        )
        np.testing.assert_allclose(exact, approx, atol=1e-12)


class TestBackends:
    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError, match="Unknown operator"):
            nn_lut_backend(replace=["gelu", "attention"])

    def test_partial_replacement_keeps_other_ops_exact(self, fast_registry, rng):
        backend = nn_lut_backend(registry=fast_registry, replace=["gelu"])
        x = rng.normal(size=(2, 8))
        np.testing.assert_allclose(backend.apply_softmax(x), functions.softmax(x))
        np.testing.assert_allclose(backend.apply_layernorm(x), functions.layer_norm(x))

    def test_backend_precisions(self, fast_registry, rng):
        x = rng.normal(size=(4, 16))
        for precision in ("fp32", "fp16", "int32"):
            backend = nn_lut_backend(registry=fast_registry, precision=precision)
            assert np.all(np.isfinite(backend.apply_gelu(x)))

    def test_invalid_precision(self, fast_registry):
        with pytest.raises(ValueError, match="precision"):
            nn_lut_backend(registry=fast_registry, precision="int4")

    def test_recorder_collects_inputs(self, fast_registry, rng):
        backend = nn_lut_backend(registry=fast_registry)
        backend.recorder.enabled = True
        backend.apply_gelu(rng.normal(size=(2, 3)))
        backend.apply_softmax(rng.normal(size=(2, 3)))
        backend.apply_layernorm(rng.normal(size=(2, 3)))
        assert len(backend.recorder.gelu_inputs) == 1
        assert len(backend.recorder.softmax_inputs) == 1
        assert len(backend.recorder.layernorm_inputs) == 1
        backend.recorder.clear()
        assert len(backend.recorder.gelu_inputs) == 0

    def test_ibert_backend_close_to_exact(self, rng):
        model = RobertaLikeModel.build(seed=0, num_layers=2, hidden_size=32, num_heads=2,
                                       intermediate_size=64, vocab_size=100)
        tokens = rng.integers(0, 100, size=(2, 10))
        exact = model.pooled(tokens, backend=exact_backend())
        approx = model.pooled(tokens, backend=ibert_backend())
        assert np.mean(np.abs(exact - approx)) < 0.05

    def test_backend_from_luts_with_exact_scalars(self, rng):
        from repro.core.approximators import ExactScalar

        backend = backend_from_luts(
            {
                "gelu": ExactScalar(functions.gelu),
                "exp": ExactScalar(functions.exp),
                "reciprocal": ExactScalar(functions.reciprocal),
                "rsqrt": ExactScalar(functions.rsqrt),
            }
        )
        x = rng.normal(size=(3, 7))
        np.testing.assert_allclose(backend.apply_gelu(x), functions.gelu(x), atol=1e-9)


class TestHeads:
    def test_classification_head_learns_separable_data(self, rng):
        features = np.concatenate([rng.normal(-2, 1, (100, 8)), rng.normal(2, 1, (100, 8))])
        labels = np.concatenate([np.zeros(100, int), np.ones(100, int)])
        head = ClassificationHead.fit(features, labels, num_classes=2)
        assert np.mean(head.predict(features) == labels) > 0.95
        proba = head.predict_proba(features)
        np.testing.assert_allclose(proba.sum(axis=-1), 1.0, rtol=1e-9)

    def test_regression_head_recovers_linear_target(self, rng):
        features = rng.normal(size=(200, 6))
        weights = rng.normal(size=6)
        targets = features @ weights + 0.5
        head = RegressionHead.fit(features, targets)
        assert np.max(np.abs(head.predict(features) - targets)) < 1e-3

    def test_span_head_finds_planted_spans(self, rng):
        # Token features where span membership is encoded in one dimension.
        num, seq, hidden = 40, 20, 8
        features = rng.normal(size=(num, seq, hidden)) * 0.1
        starts = rng.integers(2, 10, size=num)
        ends = starts + 4
        for i in range(num):
            features[i, starts[i] : ends[i] + 1, 0] += 3.0
        head = SpanHead.fit(features, starts, ends)
        pred_starts, pred_ends = head.predict(features)
        overlap = np.mean((pred_starts <= ends) & (pred_ends >= starts))
        assert overlap > 0.9

    def test_head_validation(self, rng):
        with pytest.raises(ValueError):
            ClassificationHead.fit(rng.normal(size=(4, 3, 2)), np.zeros(4, int), 2)
        with pytest.raises(ValueError):
            SpanHead.fit(rng.normal(size=(4, 8)), np.zeros(4, int), np.ones(4, int))
