#!/usr/bin/env bash
# Execute every example script, by default in smoke mode (EXAMPLES_SMOKE=1:
# reduced fitting budgets and task sizes, every code path still exercised).
#
#   ./scripts/run_examples.sh           # smoke mode (what tier-1 runs)
#   ./scripts/run_examples.sh --full    # full-size examples
#
# The tier-1 test run covers the same thing via tests/test_examples.py, so
# example drift fails the build.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if [[ "${1:-}" != "--full" ]]; then
    export EXAMPLES_SMOKE=1
fi

status=0
for example in examples/*.py; do
    [[ "$(basename "$example")" == "example_utils.py" ]] && continue
    echo "== ${example}"
    if ! python "$example"; then
        echo "** ${example} FAILED" >&2
        status=1
    fi
done
exit $status
