/* ThreadSanitizer driver for kernels_native.c.
 *
 * TSan cannot be LD_PRELOADed under an uninstrumented CPython (the runtime
 * requires the main executable to be instrumented and segfaults otherwise),
 * so scripts/sanitize.sh --tsan falls back to this harness: it links
 * kernels_native.c directly, fully instrumented, and reproduces the exact
 * concurrency pattern NativeKernel._run_rows uses — N threads working
 * disjoint row blocks of shared output buffers while sharing the read-only
 * operands (packed weights, column sums, bias/gamma/beta vectors).  Any
 * data race the threaded Python path could hit between kernel invocations
 * on a shared tensor is visible here; TSan aborts the run on a report.
 *
 * Thread count comes from REPRO_KERNEL_THREADS (default 4).
 */
#include <pthread.h>
#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>

int repro_gemm_impl(void);
void repro_gemm_s8(const int8_t *a, const int8_t *bt, const int32_t *colsum,
                   int32_t *c, int64_t m, int64_t k, int64_t n);
int repro_maxabs_f64(const double *x, int64_t size, double *out);
int repro_qpack_f64(const double *x, int64_t size, double scale, int8_t *q);
void repro_dequant_bias_f64(const int32_t *acc, double scale,
                            const double *bias, double *out, int64_t rows,
                            int64_t cols);
void repro_bias_residual_f64(const double *x, const double *bias,
                             const double *res, double *out, int64_t rows,
                             int64_t cols);
void repro_bias_relu_f64(const double *x, const double *bias, double *out,
                         int64_t rows, int64_t cols);
void repro_scale_affine_f64(const double *centered, const double *inv_std,
                            const double *gamma, const double *beta,
                            double *out, int64_t rows, int64_t cols);

enum { M = 192, K = 128, N = 96, ITERS = 25 };

typedef struct {
    int tid;
    int threads;
    const int8_t *a;
    const int8_t *bt;
    const int32_t *colsum;
    int32_t *acc;
    const double *xf;
    const double *bias;
    const double *res;
    const double *inv_std;
    const double *gamma;
    const double *beta;
    double *out;
    int8_t *q;
    int failed;
} job_t;

static void *worker(void *arg) {
    job_t *job = (job_t *)arg;
    /* Same decomposition as NativeKernel._run_rows: np.linspace row bounds. */
    int64_t start = (int64_t)((double)M * job->tid / job->threads);
    int64_t stop = (int64_t)((double)M * (job->tid + 1) / job->threads);
    int64_t rows = stop - start;
    if (rows <= 0)
        return NULL;
    for (int iter = 0; iter < ITERS; ++iter) {
        repro_gemm_s8(job->a + start * K, job->bt, job->colsum,
                      job->acc + start * N, rows, K, N);
        repro_dequant_bias_f64(job->acc + start * N, 0.03125, job->bias,
                               job->out + start * N, rows, N);
        repro_bias_residual_f64(job->xf + start * N, job->bias,
                                job->res + start * N, job->out + start * N,
                                rows, N);
        repro_bias_relu_f64(job->xf + start * N, job->bias,
                            job->out + start * N, rows, N);
        repro_scale_affine_f64(job->xf + start * N, job->inv_std + start,
                               job->gamma, job->beta, job->out + start * N,
                               rows, N);
        double mx = 0.0;
        if (repro_maxabs_f64(job->out + start * N, rows * N, &mx))
            job->failed = 1;
        if (mx > 0.0 &&
            repro_qpack_f64(job->out + start * N, rows * N, 127.0 / mx,
                            job->q + start * N))
            job->failed = 1;
    }
    return NULL;
}

int main(void) {
    int threads = 4;
    const char *env = getenv("REPRO_KERNEL_THREADS");
    if (env && atoi(env) > 0)
        threads = atoi(env);

    static int8_t a[M * K], bt[N * K], q[M * N];
    static int32_t colsum[N], acc[M * N];
    static double xf[M * N], bias[N], res[M * N], inv_std[M];
    static double gamma_[N], beta_[N], out[M * N];

    unsigned seed = 12345u;
    for (int i = 0; i < M * K; ++i)
        a[i] = (int8_t)((seed = seed * 1103515245u + 12345u) >> 24);
    for (int i = 0; i < N * K; ++i)
        bt[i] = (int8_t)((seed = seed * 1103515245u + 12345u) >> 24);
    for (int j = 0; j < N; ++j) {
        int32_t s = 0;
        for (int kk = 0; kk < K; ++kk)
            s += bt[j * K + kk];
        colsum[j] = s;
        bias[j] = 0.25 * j;
        gamma_[j] = 1.0 + 0.01 * j;
        beta_[j] = -0.5 + 0.01 * j;
    }
    for (int i = 0; i < M * N; ++i) {
        xf[i] = 0.001 * (i % 997) - 0.5;
        res[i] = 0.002 * (i % 991) - 1.0;
    }
    for (int i = 0; i < M; ++i)
        inv_std[i] = 1.0 / (1.0 + 0.001 * i);

    pthread_t tids[64];
    job_t jobs[64];
    if (threads > 64)
        threads = 64;
    for (int t = 0; t < threads; ++t) {
        jobs[t] = (job_t){.tid = t,
                          .threads = threads,
                          .a = a,
                          .bt = bt,
                          .colsum = colsum,
                          .acc = acc,
                          .xf = xf,
                          .bias = bias,
                          .res = res,
                          .inv_std = inv_std,
                          .gamma = gamma_,
                          .beta = beta_,
                          .out = out,
                          .q = q,
                          .failed = 0};
        if (pthread_create(&tids[t], NULL, worker, &jobs[t]) != 0) {
            fprintf(stderr, "pthread_create failed\n");
            return 2;
        }
    }
    int failed = 0;
    for (int t = 0; t < threads; ++t) {
        pthread_join(tids[t], NULL);
        failed |= jobs[t].failed;
    }
    if (failed) {
        fprintf(stderr, "tsan_driver: kernel reported non-finite input\n");
        return 1;
    }
    double checksum = 0.0;
    for (int i = 0; i < M * N; ++i)
        checksum += out[i];
    printf("tsan_driver: gemm_impl=%d threads=%d iters=%d checksum=%.6f\n",
           repro_gemm_impl(), threads, ITERS, checksum);
    return 0;
}
