#!/usr/bin/env bash
# Regenerate BENCH_engine.json: the full BERT-base-shaped inference-engine
# benchmark (seed path vs vectorized fast path, plus the concurrent/sharded
# serving rows and the IPC transport microbenchmark), and run the speed
# gates.
#
#   ./scripts/bench.sh            # regenerate BENCH_engine.json + run gates
#   ./scripts/bench.sh --cli      # CLI-only regeneration (no pytest)
#   ./scripts/bench.sh --ipc      # pickle-vs-shm-ring IPC microbenchmark only
#   ./scripts/bench.sh --kernels  # per-op ComputeKernel microbenchmarks only
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if [[ "${1:-}" == "--cli" ]]; then
    exec python benchmarks/regression.py --mode full
fi

if [[ "${1:-}" == "--ipc" ]]; then
    exec python benchmarks/regression.py --ipc
fi

if [[ "${1:-}" == "--kernels" ]]; then
    exec python benchmarks/regression.py --kernels
fi

BENCH_ENGINE_FULL=1 python -m pytest benchmarks/ -q -s --benchmark-disable

# Emit the serving rows of the refreshed report for quick inspection.
python - <<'PY'
import json

report = json.load(open("BENCH_engine.json"))
for name in (
    "session_ragged_fp32",
    "server_concurrent_fp32",
    "server_sharded_fp32",
    "server_sharded_shm_fp32",
):
    row = report["end_to_end"][name]
    extra = ""
    if "queue" in row:
        queue = row["queue"]
        kind = "worker processes" if "cpu_count" in row else "replicas"
        extra = (
            f", {row['num_replicas']} {kind}, mean batch "
            f"{queue['mean_batch_size']:.1f}, p50 {queue['p50_latency_ms']:.0f} ms"
            f" / p99 {queue['p99_latency_ms']:.0f} ms"
            f", mean service {queue['mean_service_ms']:.0f} ms"
        )
        if "transport" in row:
            extra += f", transport={row['transport']}"
        if "cpu_count" in row:
            extra += f", {row['cpu_count']} cores"
    print(
        f"{name}: {row['speedup']:.2f}x "
        f"({row['tokens_per_s_seed']:.0f} -> {row['tokens_per_s_fast']:.0f} tokens/s"
        f"{extra})"
    )
trace_row = report["end_to_end"]["server_sharded_leastloaded_fp32"]
latency = trace_row["latency"]
print(
    f"server_sharded_leastloaded_fp32: trace replay, router={trace_row['router']}, "
    f"burst p99 {latency['burst']['p99_ms']:.0f} ms vs steady p99 "
    f"{latency['steady']['p99_ms']:.0f} ms, "
    f"{trace_row['queue']['stolen']} batches stolen, "
    f"{latency['failed']} failed"
)
chaos = report["end_to_end"]["server_sharded_chaos_fp32"]
print(
    f"server_sharded_chaos_fp32: worker crash at batch "
    f"{chaos['fault_plan']['worker_crash_at']}, goodput ratio "
    f"{chaos['goodput_ratio']:.2f} "
    f"({chaos['clean']['goodput_rps']:.0f} -> "
    f"{chaos['chaos']['goodput_rps']:.0f} req/s), "
    f"p99 {chaos['p99_degradation_x']:.2f}x, "
    f"{chaos['chaos']['retry_attempts']} retries, "
    f"{chaos['chaos']['replicas_retired']} retired, "
    f"{chaos['chaos']['failed']} lost, "
    f"float64 bitwise equal: {chaos['cached_float64_bitwise_equal']}"
)
ipc = report["ipc"]
print(
    f"ipc transport: pipe {1e6 * ipc['pipe_per_request_s']:.0f} us/req vs "
    f"shm ring {1e6 * ipc['shm_ring_per_request_s']:.0f} us/req -> "
    f"{ipc['overhead_ratio']:.2f}x lower overhead"
)
kernels = report["kernels"]
if kernels["native_available"]:
    for name in ("gemm_int8", "lut_gelu_bias", "encoder_forward_int8"):
        row = kernels["ops"][name]
        print(
            f"kernel {name}: numpy {1e3 * row['numpy_s']:.2f} ms vs "
            f"native {1e3 * row['native_s']:.2f} ms -> {row['speedup']:.2f}x"
        )
else:
    print(f"kernels: native unavailable ({kernels['native_unavailable_reason']})")
PY
