#!/usr/bin/env bash
# Regenerate BENCH_engine.json: the full BERT-base-shaped inference-engine
# benchmark (seed path vs vectorized fast path), plus the speed gates.
#
#   ./scripts/bench.sh            # regenerate BENCH_engine.json + run gates
#   ./scripts/bench.sh --cli      # CLI-only regeneration (no pytest)
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if [[ "${1:-}" == "--cli" ]]; then
    exec python benchmarks/regression.py --mode full
fi

BENCH_ENGINE_FULL=1 exec python -m pytest benchmarks/ -q -s --benchmark-disable
