#!/usr/bin/env bash
# Regenerate BENCH_engine.json: the full BERT-base-shaped inference-engine
# benchmark (seed path vs vectorized fast path, plus the concurrent-serving
# row), and run the speed gates.
#
#   ./scripts/bench.sh            # regenerate BENCH_engine.json + run gates
#   ./scripts/bench.sh --cli      # CLI-only regeneration (no pytest)
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if [[ "${1:-}" == "--cli" ]]; then
    exec python benchmarks/regression.py --mode full
fi

BENCH_ENGINE_FULL=1 python -m pytest benchmarks/ -q -s --benchmark-disable

# Emit the serving rows of the refreshed report for quick inspection.
python - <<'PY'
import json

report = json.load(open("BENCH_engine.json"))
for name in ("session_ragged_fp32", "server_concurrent_fp32", "server_sharded_fp32"):
    row = report["end_to_end"][name]
    extra = ""
    if "queue" in row:
        queue = row["queue"]
        kind = "worker processes" if "cpu_count" in row else "replicas"
        extra = (
            f", {row['num_replicas']} {kind}, mean batch "
            f"{queue['mean_batch_size']:.1f}, p50 {queue['p50_latency_ms']:.0f} ms"
            f" / p99 {queue['p99_latency_ms']:.0f} ms"
        )
        if "cpu_count" in row:
            extra += f", {row['cpu_count']} cores"
    print(
        f"{name}: {row['speedup']:.2f}x "
        f"({row['tokens_per_s_seed']:.0f} -> {row['tokens_per_s_fast']:.0f} tokens/s"
        f"{extra})"
    )
PY
