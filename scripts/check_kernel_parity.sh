#!/usr/bin/env bash
# One-shot ComputeKernel parity check: prints a compact table comparing the
# compiled NativeKernel against the NumpyKernel reference across int8/fp32 —
# per-op kernels plus an end-to-end encoder forward/pooled pass — and exits
# non-zero on any mismatch (the contract is bitwise, not approximate).
#
#   ./scripts/check_kernel_parity.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
exec python benchmarks/kernel_parity.py "$@"
