#!/usr/bin/env bash
# One-stop pre-commit check: invariant static analysis + lint + benchmark
# smoke.  Everything here also runs (or is gated) in tier-1; this script is
# the fast local loop.
#
#   ./scripts/check.sh                    # staticcheck + ruff (if installed) + bench smoke
#   ./scripts/check.sh --fast             # staticcheck + ruff only (skip the bench smoke)
#   ./scripts/check.sh --diff origin/main # limit staticcheck findings to lines/symbols
#                                         # changed since the ref (facts still whole-program)
#
# Exit-code contract (CI keys off this; see repro/staticcheck/cli.py):
#   0  everything passed
#   1  staticcheck found a live finding or a stale baseline entry, or a
#      downstream check (lint, bench smoke) failed
#   2  staticcheck usage/environment error (e.g. a bad --diff ref)
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

FAST=0
DIFF_REF=""
while [[ $# -gt 0 ]]; do
    case "$1" in
        --fast) FAST=1; shift ;;
        --diff) DIFF_REF="${2:?--diff needs a git ref}"; shift 2 ;;
        *) echo "unknown option: $1" >&2; exit 2 ;;
    esac
done

STATICCHECK_ARGS=(src)
if [[ -n "$DIFF_REF" ]]; then
    STATICCHECK_ARGS+=(--diff "$DIFF_REF")
fi

echo "== staticcheck (locks/races, lock-order deadlocks, blocking-under-lock,"
echo "==             lifecycle, dtype, pickle boundary, spec/opcode drift, parity audit)"
python -m repro.staticcheck "${STATICCHECK_ARGS[@]}"

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff (correctness rules from pyproject.toml)"
    ruff check src tests benchmarks
else
    echo "== ruff not installed; skipping lint (pip install ruff to enable)"
fi

if [[ "$FAST" -ne 1 ]]; then
    echo "== benchmark smoke (tiny shapes, asserts the harness still runs end to end)"
    # -c, not a stdin heredoc: the sharded benchmarks spawn workers, and
    # multiprocessing's spawn re-runs __main__ by path — '<stdin>' is not a
    # path, so a heredoc main kills every worker at bootstrap.
    python -c '
from benchmarks.regression import run_engine_benchmark

report = run_engine_benchmark(mode="smoke")
rows = len(report.get("end_to_end", {})) + len(report.get("operators", {}))
assert rows > 0, "benchmark smoke produced no rows"
print(f"benchmark smoke ok ({rows} rows)")
'
fi

echo "== all checks passed"
