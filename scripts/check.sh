#!/usr/bin/env bash
# One-stop pre-commit check: invariant static analysis + lint + benchmark
# smoke.  Everything here also runs (or is gated) in tier-1; this script is
# the fast local loop.
#
#   ./scripts/check.sh            # staticcheck + ruff (if installed) + bench smoke
#   ./scripts/check.sh --fast     # staticcheck + ruff only (skip the bench smoke)
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== staticcheck (lock/race, lifecycle, dtype, pickle boundary, parity audit)"
python -m repro.staticcheck src

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff (correctness rules from pyproject.toml)"
    ruff check src tests benchmarks
else
    echo "== ruff not installed; skipping lint (pip install ruff to enable)"
fi

if [[ "${1:-}" != "--fast" ]]; then
    echo "== benchmark smoke (tiny shapes, asserts the harness still runs end to end)"
    # -c, not a stdin heredoc: the sharded benchmarks spawn workers, and
    # multiprocessing's spawn re-runs __main__ by path — '<stdin>' is not a
    # path, so a heredoc main kills every worker at bootstrap.
    python -c '
from benchmarks.regression import run_engine_benchmark

report = run_engine_benchmark(mode="smoke")
rows = len(report.get("end_to_end", {})) + len(report.get("operators", {}))
assert rows > 0, "benchmark smoke produced no rows"
print(f"benchmark smoke ok ({rows} rows)")
'
fi

echo "== all checks passed"
