#!/usr/bin/env bash
# Dynamic analysis for the native kernel seam: rebuild kernels_native.c with
# sanitizers and run the kernel test suite against the instrumented library.
#
#   ./scripts/sanitize.sh           # AddressSanitizer + UBSan
#   ./scripts/sanitize.sh --tsan    # ThreadSanitizer, REPRO_KERNEL_THREADS=4
#
# The builder's REPRO_KERNEL_CFLAGS escape hatch injects the -fsanitize flags
# (they participate in the .so cache tag, so sanitizer builds never collide
# with regular ones), and a throwaway REPRO_KERNEL_CACHE_DIR keeps the user's
# cache clean.  Because ctypes loads the .so into an *uninstrumented* CPython,
# the sanitizer runtime must come in via LD_PRELOAD; leak checking is off
# (CPython's own allocations would drown the report) — ASan still catches
# overflows/UAF in kernel code, UBSan undefined behaviour, TSan data races in
# the row-block threaded paths.  Exits 0 with a notice when the toolchain
# does not support the requested sanitizer.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

MODE=asan
if [[ "${1:-}" == "--tsan" ]]; then
    MODE=tsan
    shift
fi

CC_BIN="${REPRO_CC:-}"
if [[ -z "$CC_BIN" ]]; then
    for cand in cc gcc clang; do
        if command -v "$cand" >/dev/null 2>&1; then CC_BIN="$cand"; break; fi
    done
fi
if [[ -z "$CC_BIN" ]]; then
    echo "sanitize.sh: no C compiler found; skipping (nothing to sanitize)"
    exit 0
fi

probe() {
    local tmp
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' RETURN
    echo 'int main(void){return 0;}' > "$tmp/probe.c"
    "$CC_BIN" $1 -o "$tmp/probe" "$tmp/probe.c" >/dev/null 2>&1
}

runtime_lib() {
    local path
    path="$("$CC_BIN" -print-file-name="$1" 2>/dev/null || true)"
    # -print-file-name echoes the bare name back when the library is unknown
    if [[ "$path" == "$1" || -z "$path" ]]; then return 1; fi
    echo "$path"
}

if [[ "$MODE" == "asan" ]]; then
    SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer -g"
    if ! probe "$SAN_FLAGS"; then
        echo "sanitize.sh: $CC_BIN does not support -fsanitize=address,undefined; skipping"
        exit 0
    fi
    PRELOAD=""
    for lib in libasan.so libubsan.so; do
        if libpath="$(runtime_lib "$lib")"; then
            PRELOAD="${PRELOAD:+$PRELOAD:}$libpath"
        fi
    done
    if [[ -z "$PRELOAD" ]]; then
        echo "sanitize.sh: sanitizer runtime libraries not found; skipping"
        exit 0
    fi
    export ASAN_OPTIONS="detect_leaks=0:abort_on_error=1:verify_asan_link_order=0"
    export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
    export REPRO_KERNEL_THREADS="${REPRO_KERNEL_THREADS:-1}"
    LABEL="ASan+UBSan"
else
    SAN_FLAGS="-fsanitize=thread -fno-omit-frame-pointer -g"
    if ! probe "$SAN_FLAGS"; then
        echo "sanitize.sh: $CC_BIN does not support -fsanitize=thread; skipping"
        exit 0
    fi
    if ! PRELOAD="$(runtime_lib libtsan.so)"; then
        echo "sanitize.sh: libtsan runtime not found; skipping"
        exit 0
    fi
    # Python's daemon threads are never joined — that is not the race we
    # are hunting; halt hard on actual data-race reports in kernel code.
    export TSAN_OPTIONS="halt_on_error=1:report_thread_leaks=0:report_signal_unsafe=0"
    export REPRO_KERNEL_THREADS="${REPRO_KERNEL_THREADS:-4}"
    LABEL="TSan (REPRO_KERNEL_THREADS=$REPRO_KERNEL_THREADS)"

    # TSan's runtime requires an instrumented main executable; LD_PRELOAD
    # under a stock CPython usually dies on startup.  Probe it — and when it
    # cannot host Python, fall back to the fully-instrumented native driver,
    # which reproduces NativeKernel._run_rows' row-block concurrency exactly.
    tsan_hosts_python() {
        # Probe as a background job: bash stays quiet when it dies by signal.
        LD_PRELOAD="$PRELOAD" python -c pass >/dev/null 2>&1 &
        wait "$!" 2>/dev/null
    }
    if ! tsan_hosts_python; then
        echo "sanitize.sh: $LABEL -- TSan cannot be preloaded under this CPython; using the instrumented native driver (scripts/tsan_driver.c)"
        DRIVER_DIR="$(mktemp -d /tmp/repro-tsan-XXXXXX)"
        trap 'rm -rf "$DRIVER_DIR"' EXIT
        build_driver() {
            "$CC_BIN" $SAN_FLAGS -O2 $1 \
                src/repro/core/kernels_native.c scripts/tsan_driver.c \
                -o "$DRIVER_DIR/tsan_driver" -lpthread -lm 2>/dev/null
        }
        build_driver "-march=native" || build_driver ""
        if [[ ! -x "$DRIVER_DIR/tsan_driver" ]]; then
            echo "sanitize.sh: failed to build the TSan driver; skipping"
            exit 0
        fi
        "$DRIVER_DIR/tsan_driver"
        echo "sanitize.sh: $LABEL pass clean (native driver)"
        exit 0
    fi
fi

SAN_CACHE="$(mktemp -d /tmp/repro-sanitize-XXXXXX)"
trap 'rm -rf "$SAN_CACHE"' EXIT
export REPRO_KERNEL_CFLAGS="$SAN_FLAGS"
export REPRO_KERNEL_CACHE_DIR="$SAN_CACHE"
export REPRO_CC="$CC_BIN"
export REPRO_NATIVE_KERNEL=1

echo "sanitize.sh: $LABEL via $CC_BIN -- rebuilding kernels_native.c and running tests/core/test_kernels.py"
LD_PRELOAD="$PRELOAD${LD_PRELOAD:+:$LD_PRELOAD}" \
    python -m pytest tests/core/test_kernels.py -x -q "$@"
echo "sanitize.sh: $LABEL pass clean"
